"""Tests for interleaved-file addressing, including the paper's key
guarantee: p consecutive blocks always land on p distinct LFS instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InterleaveMap


def test_basic_mapping_no_offset():
    imap = InterleaveMap(width=4, start=0)
    assert imap.locate(0) == (0, 0)
    assert imap.locate(1) == (1, 0)
    assert imap.locate(4) == (0, 1)
    assert imap.locate(11) == (3, 2)


def test_mapping_with_start_offset():
    # "block zero belongs to LFS k": n -> LFS (n + k) mod p
    imap = InterleaveMap(width=4, start=2)
    assert imap.slot_of(0) == 2
    assert imap.slot_of(1) == 3
    assert imap.slot_of(2) == 0
    assert imap.local_block(5) == 1


def test_width_one_degenerates_to_sequential():
    imap = InterleaveMap(width=1)
    for n in range(5):
        assert imap.locate(n) == (0, n)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        InterleaveMap(width=0)
    with pytest.raises(ValueError):
        InterleaveMap(width=4, start=4)
    with pytest.raises(ValueError):
        InterleaveMap(width=4, start=-1)


def test_negative_block_rejected():
    imap = InterleaveMap(width=4)
    with pytest.raises(ValueError):
        imap.slot_of(-1)
    with pytest.raises(ValueError):
        imap.global_block(0, -1)


def test_column_of_slot():
    imap = InterleaveMap(width=4, start=1)
    # slot 1 holds column 0 (blocks 0, 4, 8...)
    assert imap.column_of_slot(1) == 0
    assert imap.column_of_slot(0) == 3


def test_constituent_sizes_balanced():
    imap = InterleaveMap(width=4)
    assert imap.constituent_sizes(8) == [2, 2, 2, 2]
    assert imap.constituent_sizes(10) == [3, 3, 2, 2]
    assert imap.constituent_sizes(0) == [0, 0, 0, 0]


def test_constituent_sizes_with_start():
    imap = InterleaveMap(width=4, start=3)
    # blocks 0,1 -> slots 3,0
    assert imap.constituent_sizes(2) == [1, 0, 0, 1]


def test_total_from_sizes_roundtrip():
    imap = InterleaveMap(width=4, start=1)
    for total in range(20):
        assert imap.total_from_sizes(imap.constituent_sizes(total)) == total


def test_total_from_sizes_rejects_illegal_prefix():
    imap = InterleaveMap(width=4)
    with pytest.raises(ValueError):
        imap.total_from_sizes([0, 1, 0, 0])  # block 0 missing
    with pytest.raises(ValueError):
        imap.total_from_sizes([2, 0, 0, 0])  # not round robin
    with pytest.raises(ValueError):
        imap.total_from_sizes([1, 1])  # wrong length


@settings(max_examples=200)
@given(
    width=st.integers(1, 64),
    start=st.integers(0, 63),
    block=st.integers(0, 10_000),
)
def test_roundtrip_property(width, start, block):
    """global -> (slot, local) -> global is the identity."""
    start %= width
    imap = InterleaveMap(width, start)
    slot, local = imap.locate(block)
    assert 0 <= slot < width
    assert imap.global_block(slot, local) == block


@settings(max_examples=200)
@given(
    width=st.integers(1, 64),
    start=st.integers(0, 63),
    base=st.integers(0, 10_000),
)
def test_consecutive_blocks_hit_distinct_slots(width, start, base):
    """Round-robin guarantees p consecutive blocks on p different nodes —
    the property hashing cannot give (section 3)."""
    start %= width
    imap = InterleaveMap(width, start)
    slots = {imap.slot_of(base + i) for i in range(width)}
    assert len(slots) == width


@settings(max_examples=100)
@given(
    width=st.integers(1, 16),
    start=st.integers(0, 15),
    total=st.integers(0, 500),
)
def test_sizes_partition_total(width, start, total):
    start %= width
    imap = InterleaveMap(width, start)
    sizes = imap.constituent_sizes(total)
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
