"""Relay fan-out edge cases: empty work lists, degenerate width,
and heterogeneous per-entry results."""

from repro.machine import Client
from repro.workloads import build_file, pattern_chunks


def relay_entries(system, slots, args_for):
    """Build relay work-list entries for the given LFS slots."""
    return [
        {
            "efs_port": system.efs_servers[slot].port,
            "relay_port": system.relays[slot].port,
            "args": args_for(slot),
        }
        for slot in slots
    ]


def call_relay(system, entries, method):
    """Send the work list to the relay heading it (the Bridge Server's
    contract: the head relay handles ``entries[0]`` itself)."""
    client = Client(system.client_node, "relay-test")
    head = entries[0]["relay_port"] if entries else system.relays[0].port

    def body():
        return (
            yield from client.call(
                head, "relay", entries=entries, relay_method=method
            )
        )

    return system.run(body())


def test_relay_empty_entry_list(fast_system):
    assert call_relay(fast_system, [], "info") == []


def test_relay_single_entry_degenerate(fast_system):
    """One LFS: the relay handles its own slot and forwards nothing."""
    build_file(fast_system, "f", pattern_chunks(4))
    entries = relay_entries(
        fast_system, [0], lambda slot: {"file_number": 1}
    )
    results = call_relay(fast_system, entries, "info")
    assert len(results) == 1
    assert results[0].file_number == 1


def test_relay_full_width_results_in_entry_order(fast_system):
    build_file(fast_system, "f", pattern_chunks(8))
    slots = [2, 0, 3, 1]  # deliberately shuffled entry order
    entries = relay_entries(
        fast_system, slots, lambda slot: {"file_number": 1}
    )
    results = call_relay(fast_system, entries, "exists")
    assert results == [True, True, True, True]
    assert len(results) == len(slots)


def test_relay_mixed_size_responses(fast_system):
    """Entries may return differently sized results (here: batches of
    different lengths per constituent) and still come back in order."""
    # 10 blocks over p=4: constituents hold 3, 3, 2, 2 blocks.
    build_file(fast_system, "f", pattern_chunks(10))
    counts = {0: 3, 1: 3, 2: 2, 3: 2}
    entries = relay_entries(
        fast_system,
        [0, 1, 2, 3],
        lambda slot: {
            "file_number": 1,
            "block_numbers": list(range(counts[slot])),
        },
    )
    results = call_relay(fast_system, entries, "read_blocks")
    assert [len(batch.results) for batch in results] == [3, 3, 2, 2]
    for batch in results:
        assert all(result.data for result in batch.results)
