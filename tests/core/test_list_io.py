"""Server-level list I/O: one batched EFS message per constituent LFS."""

import pytest

from repro.collective import ListIORequest
from repro.config import DATA_BYTES_PER_BLOCK
from repro.errors import BridgeBadRequestError, ProcessError
from repro.workloads import build_file, pattern_chunks

from tests.core.conftest import make_system


def padded_chunks(count, stamp=b"BLK"):
    """pattern_chunks padded to the full data area: EFS reads always
    return the zero-padded 960-byte data area, so full-size chunks make
    exact equality comparisons valid."""
    return [
        chunk.ljust(DATA_BYTES_PER_BLOCK, b"\x00")
        for chunk in pattern_chunks(count, stamp=stamp)
    ]


def efs_requests(system):
    return sum(server.requests_served for server in system.efs_servers)


def payload(tag):
    return bytes([tag % 251]) * 960


# ---------------------------------------------------------------------------
# list_read
# ---------------------------------------------------------------------------


def test_list_read_returns_request_order(fast_system):
    chunks = padded_chunks(32)
    build_file(fast_system, "f", chunks)
    client = fast_system.naive_client()

    def body():
        return (yield from client.list_read("f", [9, 2, 2, 31, 0]))

    assert fast_system.run(body()) == [
        chunks[9], chunks[2], chunks[2], chunks[31], chunks[0]
    ]


def test_list_read_accepts_descriptor(fast_system):
    chunks = padded_chunks(32)
    build_file(fast_system, "f", chunks)
    client = fast_system.naive_client()
    pattern = ListIORequest.strided(1, 3, 9)

    def body():
        return (yield from client.list_read("f", pattern))

    assert fast_system.run(body()) == [chunks[b] for b in pattern.blocks()]


def test_strided_256_blocks_at_most_p_batched_requests():
    """The headline claim: 256 single-block strided accesses over p = 8
    LFS cost at most 8 batched EFS requests, versus 256 naive RPCs."""
    p = 8
    system = make_system(p)
    blocks = 512
    chunks = padded_chunks(blocks)
    build_file(system, "f", chunks)
    client = system.naive_client()
    pattern = ListIORequest.strided(start=0, stride=2, count=256)
    assert pattern.total_blocks == 256

    def open_file():
        yield from client.open("f")

    system.run(open_file())

    before = efs_requests(system)

    def naive():
        data = []
        for block in pattern.blocks():
            data.append((yield from client.random_read("f", block)))
        return data

    naive_data = system.run(naive())
    naive_requests = efs_requests(system) - before
    assert naive_requests == 256

    before = efs_requests(system)

    def listio():
        return (yield from client.list_read("f", pattern))

    listio_data = system.run(listio())
    listio_requests = efs_requests(system) - before
    assert listio_requests <= p
    assert listio_data == naive_data


def test_list_read_empty(fast_system):
    build_file(fast_system, "f", padded_chunks(4))
    client = fast_system.naive_client()

    def body():
        return (yield from client.list_read("f", []))

    assert fast_system.run(body()) == []


def test_list_read_out_of_bounds(fast_system):
    build_file(fast_system, "f", padded_chunks(4))
    client = fast_system.naive_client()

    def body():
        yield from client.list_read("f", [0, 4])

    with pytest.raises(ProcessError) as excinfo:
        fast_system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


def test_list_read_disordered_file(fast_system):
    """Disordered files route through the block map, not the interleave."""
    client = fast_system.naive_client()
    chunks = padded_chunks(16)

    def body():
        yield from client.create("scrambled", disordered=True)
        yield from client.write_all("scrambled", chunks)
        yield from client.open("scrambled")
        return (yield from client.list_read("scrambled", [13, 1, 7]))

    assert fast_system.run(body()) == [chunks[13], chunks[1], chunks[7]]


# ---------------------------------------------------------------------------
# list_write
# ---------------------------------------------------------------------------


def test_list_write_scatter_updates(fast_system):
    chunks = padded_chunks(16)
    build_file(fast_system, "f", chunks)
    client = fast_system.naive_client()

    def body():
        total = yield from client.list_write(
            "f", [(3, payload(1)), (11, payload(2))]
        )
        data = yield from client.list_read("f", [3, 11, 4])
        return total, data

    total, data = fast_system.run(body())
    assert total == 16
    assert data == [payload(1), payload(2), chunks[4]]


def test_list_write_dense_append_grows_file(fast_system):
    build_file(fast_system, "f", padded_chunks(8))
    client = fast_system.naive_client()

    def body():
        total = yield from client.list_write(
            "f", [(9, payload(9)), (8, payload(8)), (10, payload(10))]
        )
        data = yield from client.list_read("f", [8, 9, 10])
        return total, data

    total, data = fast_system.run(body())
    assert total == 11
    assert data == [payload(8), payload(9), payload(10)]


def test_list_write_pattern_with_chunks(fast_system):
    build_file(fast_system, "f", padded_chunks(12))
    client = fast_system.naive_client()
    pattern = ListIORequest.strided(0, 4, 3)

    def body():
        yield from client.list_write(
            "f", pattern, chunks=[payload(20), payload(21), payload(22)]
        )
        return (yield from client.list_read("f", [0, 4, 8]))

    assert fast_system.run(body()) == [payload(20), payload(21), payload(22)]


def test_list_write_chunk_count_mismatch(fast_system):
    build_file(fast_system, "f", padded_chunks(8))
    client = fast_system.naive_client()

    def body():
        yield from client.list_write("f", [0, 1], chunks=[payload(0)])

    with pytest.raises(ProcessError) as excinfo:
        fast_system.run(body())
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_list_write_rejects_sparse_append(fast_system):
    build_file(fast_system, "f", padded_chunks(8))
    client = fast_system.naive_client()

    def body():
        yield from client.list_write("f", [(12, payload(0))])

    with pytest.raises(ProcessError) as excinfo:
        fast_system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


def test_list_write_rejects_disordered(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("scrambled", disordered=True)
        yield from client.write_all("scrambled", padded_chunks(4))
        yield from client.list_write("scrambled", [(0, payload(0))])

    with pytest.raises(ProcessError) as excinfo:
        fast_system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


def test_list_write_is_batched_per_slot(fast_system):
    build_file(fast_system, "f", padded_chunks(32))
    client = fast_system.naive_client()

    def open_file():
        yield from client.open("f")

    fast_system.run(open_file())
    before = efs_requests(fast_system)

    def body():
        yield from client.list_write(
            "f", [(block, payload(block)) for block in range(16)]
        )

    fast_system.run(body())
    # 16 writes over p=4 slots -> exactly 4 batched write_blocks requests.
    assert efs_requests(fast_system) - before == 4


def test_list_write_fanout_limit_still_correct():
    """A bounded gather window changes pacing, not results."""
    from repro.config import DEFAULT_CONFIG

    system = make_system(4, config=DEFAULT_CONFIG.with_changes(
        bridge_fanout_limit=1
    ))
    chunks = padded_chunks(16)
    build_file(system, "f", chunks)
    client = system.naive_client()
    pattern = list(range(16))

    def body():
        yield from client.list_write(
            "f", [(b, payload(b)) for b in pattern]
        )
        return (yield from client.list_read("f", pattern))

    assert system.run(body()) == [payload(b) for b in pattern]
