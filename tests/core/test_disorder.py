"""Tests for disordered files and off-line reorganization (E18)."""

import pytest

from repro.core.disorder import reorganize, scatter_quality
from repro.errors import BridgeBadRequestError
from tests.core.conftest import make_system


def data_for(index):
    return f"scatter-{index:04d}|".encode() * 2


def build_disordered(system, name="messy", blocks=16):
    client = system.naive_client()

    def body():
        yield from client.create(name, disordered=True)
        for index in range(blocks):
            yield from client.seq_write(name, data_for(index))
        return (yield from client.get_block_map(name))

    block_map = system.run(body())
    return client, block_map


def test_disordered_roundtrip_preserves_order():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=16)

    def body():
        return (yield from client.read_all("messy"))

    chunks = system.run(body())
    assert len(chunks) == 16
    for index, chunk in enumerate(chunks):
        assert chunk.startswith(data_for(index))


def test_disordered_map_is_actually_scattered():
    system = make_system(4)
    _client, block_map = build_disordered(system, blocks=64)
    slots = [slot for slot, _local in block_map]
    # not the round-robin pattern
    assert slots != [i % 4 for i in range(64)]
    # but every slot is used
    assert set(slots) == {0, 1, 2, 3}
    # per-slot local numbers are dense 0..k-1
    for slot in range(4):
        locals_on_slot = [l for s, l in block_map if s == slot]
        assert locals_on_slot == list(range(len(locals_on_slot)))
    # and windows rarely hit all 4 distinct slots
    assert scatter_quality(block_map, 4) < 0.9


def test_disordered_random_read():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=12)

    def body():
        a = yield from client.random_read("messy", 7)
        b = yield from client.random_read("messy", 0)
        return a, b

    a, b = system.run(body())
    assert a.startswith(data_for(7))
    assert b.startswith(data_for(0))


def test_disordered_random_write_in_place():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=8)

    def body():
        yield from client.random_write("messy", 3, b"PATCH")
        return (yield from client.read_all("messy"))

    chunks = system.run(body())
    assert chunks[3].startswith(b"PATCH")
    assert chunks[2].startswith(data_for(2))


def test_disordered_open_resyncs():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=10)

    def body():
        opened = yield from client.open("messy")
        return opened

    opened = system.run(body())
    assert opened.total_blocks == 10


def test_block_map_rejected_for_strict_files():
    system = make_system(4)
    client = system.naive_client()

    def body():
        yield from client.create("strict")
        try:
            yield from client.get_block_map("strict")
        except BridgeBadRequestError:
            return "caught"

    assert system.run(body()) == "caught"


def test_reorganize_restores_strict_interleaving():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=16)

    def body():
        result = yield from reorganize(client, "messy", "tidy")
        opened = yield from client.open("tidy")
        chunks = yield from client.read_all("tidy")
        return result, opened, chunks

    result, opened, chunks = system.run(body())
    assert result.blocks == 16
    # contents preserved in global order
    for index, chunk in enumerate(chunks):
        assert chunk.startswith(data_for(index))
    # strictly interleaved again: perfectly balanced constituents
    assert [c.size_blocks for c in opened.constituents] == [4, 4, 4, 4]
    # the old file is gone
    assert system.bridge.directory.names() == ["tidy"]


def test_reorganize_can_keep_source():
    system = make_system(4)
    client, _map = build_disordered(system, blocks=8)

    def body():
        yield from reorganize(client, "messy", "tidy", delete_source=False)
        return sorted(system.bridge.directory.names())

    assert system.run(body()) == ["messy", "tidy"]


def test_scatter_quality_bounds():
    # perfect round robin
    perfect = [(i % 4, i // 4) for i in range(16)]
    assert scatter_quality(perfect, 4) == 1.0
    # everything on one slot
    awful = [(0, i) for i in range(16)]
    assert scatter_quality(awful, 4) == 0.0
    # degenerate inputs
    assert scatter_quality([], 4) == 0.0
    assert scatter_quality(perfect, 0) == 0.0


def test_disordered_sequential_read_slower_than_strict():
    """The paper's price: scattering loses per-slot sequential locality,
    so hint-threading breaks and reads walk the lists."""
    from repro.harness.builders import BridgeSystem

    def seq_read_time(disordered):
        system = BridgeSystem(4, seed=55)  # real 15 ms disks
        client = system.naive_client()
        blocks = 96

        def setup():
            yield from client.create("f", disordered=disordered)
            for index in range(blocks):
                yield from client.seq_write("f", data_for(index))

        system.run(setup())
        # cold caches: reads must pay the real device/layout costs
        for efs in system.efs_servers:
            system.run(efs.cache.flush(), name="flush")
            efs.cache.invalidate_all()

        def body():
            yield from client.open("f")
            start = system.sim.now
            while True:
                block, _data = yield from client.seq_read("f")
                if block is None:
                    break
            return system.sim.now - start

        return system.run(body())

    strict = seq_read_time(False)
    messy = seq_read_time(True)
    assert messy > strict
