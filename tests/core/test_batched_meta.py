"""S23 batched metadata ops: semantics, windows, telemetry.

The batched surface promises per-name typed outcomes in input order
(duplicates included), one bad name never failing its batch, exact
windowed RPC counts matching :func:`repro.analysis.batched_rpc_count`,
and cache coherence identical to the singleton ops (an ``mdelete``
bumps generations exactly like ``delete``).
"""

import pytest

from repro.analysis import batched_rpc_count
from repro.config import DEFAULT_CONFIG
from repro.core import NameOutcome
from repro.errors import (
    BridgeFileExistsError,
    BridgeFileNotFoundError,
    ProcessError,
)
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency

from .conftest import make_system


def run_batch(system, client, method, names, **kwargs):
    def body():
        return (yield from getattr(client, method)(names, **kwargs))

    return system.run(body())


def create_all(system, client, names, **kwargs):
    outcomes = run_batch(system, client, "mcreate", names, **kwargs)
    for outcome in outcomes:
        outcome.unwrap()
    return outcomes


# ---------------------------------------------------------------------------
# Outcome semantics
# ---------------------------------------------------------------------------


def test_outcomes_in_input_order_with_duplicates():
    system = make_system(4, bridge_server_count=4)
    client = system.partitioned_client()
    names = [f"ord-{i}" for i in range(8)]
    create_all(system, client, names, width=1)

    # Shuffled input plus a duplicate occurrence: every outcome lands at
    # its own input index, keyed by position rather than by name.
    query = [names[5], names[2], names[5], names[7], names[0]]
    outcomes = run_batch(system, client, "mopen", query)
    assert [outcome.name for outcome in outcomes] == query
    for outcome in outcomes:
        assert outcome.ok
        assert outcome.value.name == outcome.name


def test_one_bad_name_never_fails_the_batch():
    system = make_system(4, bridge_server_count=2)
    client = system.partitioned_client()
    names = [f"mix-{i}" for i in range(6)]
    create_all(system, client, names, width=1)

    query = names[:3] + ["mix-missing"] + names[3:]
    for method in ("mopen", "mstat", "mdelete"):
        outcomes = run_batch(system, client, method, query)
        by_name = {outcome.name: outcome for outcome in outcomes}
        assert isinstance(by_name["mix-missing"].error,
                          BridgeFileNotFoundError)
        with pytest.raises(BridgeFileNotFoundError):
            by_name["mix-missing"].unwrap()
        for name in names:
            assert by_name[name].ok, (method, name, by_name[name].error)
        if method == "mdelete":
            # Deletes already consumed the namespace; recreate it so the
            # next method in the loop sees the same world.
            create_all(system, client, names, width=1)


def test_mcreate_reports_exists_per_name():
    system = make_system(4, bridge_server_count=2)
    client = system.partitioned_client()
    create_all(system, client, ["dup-live"], width=1)

    # An existing name and an in-batch duplicate both settle as
    # per-occurrence exists errors; fresh names still create.
    batch = ["dup-a", "dup-live", "dup-b", "dup-a"]
    outcomes = run_batch(system, client, "mcreate", batch, width=1)
    assert outcomes[0].ok
    assert isinstance(outcomes[1].error, BridgeFileExistsError)
    assert outcomes[2].ok
    assert isinstance(outcomes[3].error, BridgeFileExistsError)

    opened = run_batch(system, client, "mopen", ["dup-a", "dup-b"])
    assert all(outcome.ok for outcome in opened)


def test_empty_batch_is_rejected():
    system = make_system(4, bridge_server_count=2)
    client = system.partitioned_client()
    single = system.bridges[0]

    def body():
        return (yield from client.mstat([]))

    assert system.run(body()) == []  # client-side: nothing to route

    from repro.core import BridgeClient

    direct = BridgeClient(system.client_node, single.port)

    def direct_body():
        return (yield from direct.mopen([]))

    with pytest.raises(ProcessError, match="empty name batch"):
        system.run(direct_body())


def test_mstat_matches_singleton_stat():
    system = make_system(4, bridge_server_count=2)
    client = system.partitioned_client()
    names = [f"st-{i}" for i in range(5)]
    create_all(system, client, names, width=2)

    def singles():
        stats = []
        for name in names:
            stats.append((yield from client.stat(name)))
        return stats

    singles_out = system.run(singles())
    batch_out = run_batch(system, client, "mstat", names)
    for single, outcome in zip(singles_out, batch_out):
        stat = outcome.unwrap()
        assert (stat.name, stat.file_id, stat.width, stat.start,
                stat.total_blocks) == (
            single.name, single.file_id, single.width, single.start,
            single.total_blocks)


# ---------------------------------------------------------------------------
# RPC window math
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("window", [0, 3, 16])
def test_observed_rpcs_match_the_model(window):
    config = DEFAULT_CONFIG.with_changes(bridge_fanout_limit=window)
    system = make_system(4, bridge_server_count=4, config=config)
    client = system.partitioned_client()
    names = [f"win-{i:02d}" for i in range(20)]

    def served():
        return sum(bridge.requests_served for bridge in system.bridges)

    for method, kwargs in (("mcreate", {"width": 1}), ("mopen", {}),
                           ("mstat", {}), ("mdelete", {})):
        before = served()
        outcomes = run_batch(system, client, method, names, **kwargs)
        assert all(outcome.ok for outcome in outcomes), method
        assert served() - before == batched_rpc_count(
            names, 4, window=window
        ), (method, window)


# ---------------------------------------------------------------------------
# Interplay with the other subsystems
# ---------------------------------------------------------------------------


def test_mcreate_uses_tree_dispatch_when_configured():
    config = DEFAULT_CONFIG.with_changes(create_uses_tree=True)
    system = make_system(8, bridge_server_count=2, config=config)
    client = system.partitioned_client()
    names = [f"tr-{i}" for i in range(6)]
    create_all(system, client, names)  # full width -> relay tree path

    outcomes = run_batch(system, client, "mopen", names)
    for outcome in outcomes:
        assert outcome.unwrap().width == 8


def test_mdelete_bumps_cache_generations_like_delete():
    config = DEFAULT_CONFIG.with_changes(bridge_cache_blocks=16)
    system = BridgeSystem(4, seed=5, disk_latency=FixedLatency(0.0005),
                          config=config)
    client = system.naive_client()
    names = ["gen-a", "gen-b"]

    def build():
        for name in names:
            yield from client.create(name, width=1)
            yield from client.seq_write(name, name.encode())
            yield from client.seq_read(name)  # warm the bridge cache

    system.run(build())
    bridge = system.bridges[0]
    before = {name: bridge._cache.generation(name) for name in names}

    outcomes = run_batch(system, client, "mdelete", names)
    for outcome in outcomes:
        outcome.unwrap()
    for name in names:
        assert bridge._cache.generation(name) == before[name] + 1, name
        assert not bridge._cache.contains(name, 0), name


def test_batch_telemetry_recorded_when_obs_on():
    system = make_system(4, bridge_server_count=2, obs=True)
    client = system.partitioned_client()
    names = [f"tel-{i}" for i in range(7)]
    create_all(system, client, names, width=1)
    run_batch(system, client, "mstat", names)

    metrics = system.obs.metrics
    sizes = metrics.histogram("bridge.batch.names")
    # One observation per server-side batch: the mcreate sub-batches
    # plus the mstat sub-batches, each recording its name count.
    assert sizes.count == 4
    assert sizes.total == 2 * len(names)
    snapshot = metrics.snapshot()
    batches = [value for key, value in snapshot.items()
               if key.endswith(".batch.mstat.batches")]
    counted = [value for key, value in snapshot.items()
               if key.endswith(".batch.mstat.names")]
    assert sum(batches) == 2  # one RPC per touched partition
    assert sum(counted) == len(names)


def test_batch_telemetry_off_by_default():
    system = make_system(4, bridge_server_count=2)
    assert system.obs is None
    client = system.partitioned_client()
    create_all(system, client, ["quiet-0", "quiet-1"], width=1)


def test_name_outcome_unwrap_round_trip():
    ok = NameOutcome("x", value=41)
    assert ok.ok and ok.unwrap() == 41
    bad = NameOutcome("x", error=BridgeFileNotFoundError("x"))
    assert not bad.ok
    with pytest.raises(BridgeFileNotFoundError):
        bad.unwrap()
