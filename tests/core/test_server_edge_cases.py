"""Edge-case tests for the Bridge Server: job protocol misuse, entry
validation, hint behavior, and directory invariants."""

import pytest

from repro.core import BridgeDirectory, BridgeFileEntry, ParallelWorker
from repro.core.parallel import Deposit
from repro.errors import (
    BridgeBadRequestError,
    BridgeFileExistsError,
    BridgeFileNotFoundError,
    BridgeJobError,
)
from repro.machine import Client
from tests.core.conftest import make_system


# ---------------------------------------------------------------------------
# BridgeDirectory unit behavior
# ---------------------------------------------------------------------------


def entry(name, width=2, **kwargs):
    return BridgeFileEntry(
        name=name,
        file_id=kwargs.pop("file_id", 1),
        width=width,
        start=kwargs.pop("start", 0),
        node_indexes=kwargs.pop("node_indexes", list(range(width))),
        efs_file_numbers=kwargs.pop("efs_file_numbers", [1] * width),
        **kwargs,
    )


def test_directory_insert_lookup_remove():
    directory = BridgeDirectory()
    directory.insert(entry("a"))
    assert directory.lookup("a").name == "a"
    assert directory.exists("a")
    assert len(directory) == 1
    removed = directory.remove("a")
    assert removed.name == "a"
    assert not directory.exists("a")


def test_directory_duplicate_insert():
    directory = BridgeDirectory()
    directory.insert(entry("dup"))
    with pytest.raises(BridgeFileExistsError):
        directory.insert(entry("dup"))


def test_directory_missing_lookup_and_remove():
    directory = BridgeDirectory()
    with pytest.raises(BridgeFileNotFoundError):
        directory.lookup("ghost")
    with pytest.raises(BridgeFileNotFoundError):
        directory.remove("ghost")


def test_directory_validates_entry_shape():
    directory = BridgeDirectory()
    with pytest.raises(ValueError):
        directory.insert(entry("bad-nodes", width=2, node_indexes=[0]))
    with pytest.raises(ValueError):
        directory.insert(entry("bad-files", width=2, efs_file_numbers=[1]))


def test_directory_names_sorted():
    directory = BridgeDirectory()
    for name in ("zeta", "alpha", "mid"):
        directory.insert(entry(name))
    assert directory.names() == ["alpha", "mid", "zeta"]


def test_directory_file_id_stride():
    directory = BridgeDirectory(file_id_start=3, file_id_step=4)
    assert [directory.allocate_file_id() for _ in range(3)] == [3, 7, 11]
    with pytest.raises(ValueError):
        BridgeDirectory(file_id_start=0)
    with pytest.raises(ValueError):
        BridgeDirectory(file_id_step=0)


def test_entry_locate_block_strict_and_disordered():
    strict = entry("s", width=4)
    assert strict.locate_block(5) == (1, 1)
    messy = entry("m", width=2, disordered=True, block_map=[(1, 0), (0, 0)])
    assert messy.locate_block(0) == (1, 0)
    assert messy.locate_block(1) == (0, 0)
    with pytest.raises(ValueError):
        messy.locate_block(2)


# ---------------------------------------------------------------------------
# Job protocol misuse
# ---------------------------------------------------------------------------


def test_duplicate_deposit_rejected():
    system = make_system(2)
    workers = [ParallelWorker(system.client_node, i) for i in range(2)]

    def main():
        client = system.naive_client()
        yield from client.create("dd")
        from repro.core import JobController

        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("dd", [w.port for w in workers])
        workers[0].deposit(job, b"one")
        workers[0].deposit(job, b"again")  # same worker twice
        try:
            yield from controller.write()
        except BridgeJobError as exc:
            return "duplicate" in str(exc)

    assert system.run(main()) is True


def test_foreign_message_on_job_port_rejected():
    system = make_system(2)
    worker = ParallelWorker(system.client_node, 0)

    def main():
        client = system.naive_client()
        yield from client.create("noise")
        from repro.core import JobController

        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("noise", [worker.port])
        system.client_node.send(job.job_port, "not a deposit")
        try:
            yield from controller.write()
        except BridgeJobError:
            return "caught"

    assert system.run(main()) == "caught"


def test_deposit_for_wrong_job_rejected():
    system = make_system(2)
    worker = ParallelWorker(system.client_node, 0)

    def main():
        client = system.naive_client()
        yield from client.create("wrong-job")
        from repro.core import JobController

        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("wrong-job", [worker.port])
        system.client_node.send(
            job.job_port, Deposit(job_id=999, worker_index=0, data=b"x")
        )
        try:
            yield from controller.write()
        except BridgeJobError:
            return "caught"

    assert system.run(main()) == "caught"


def test_parallel_write_on_disordered_rejected():
    system = make_system(2)
    worker = ParallelWorker(system.client_node, 0)

    def main():
        client = system.naive_client()
        yield from client.create("messy", disordered=True)
        from repro.core import JobController

        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("messy", [worker.port])
        worker.deposit(job, b"x")
        try:
            yield from controller.write()
        except BridgeJobError as exc:
            return "disordered" in str(exc)

    assert system.run(main()) is True


# ---------------------------------------------------------------------------
# Server construction and misc ops
# ---------------------------------------------------------------------------


def test_server_requires_lfs():
    from repro.config import DEFAULT_CONFIG
    from repro.core import BridgeServer
    from repro.machine import Machine
    from repro.sim import Simulator

    sim = Simulator()
    machine = Machine(sim, 1, config=DEFAULT_CONFIG)
    with pytest.raises(ValueError):
        BridgeServer(machine.node(0), [], DEFAULT_CONFIG)


def test_seq_read_before_any_write_is_eof():
    system = make_system(2)
    client = system.naive_client()

    def main():
        yield from client.create("empty")
        return (yield from client.seq_read("empty"))

    assert system.run(main()) == (None, None)


def test_seq_read_unknown_file():
    system = make_system(2)
    client = system.naive_client()

    def main():
        try:
            yield from client.seq_read("ghost")
        except BridgeFileNotFoundError:
            return "caught"

    assert system.run(main()) == "caught"


def test_open_rejects_inconsistent_tool_writes():
    """A tool that appends out of round-robin order leaves sizes that are
    not a legal prefix; the next open must flag it."""
    system = make_system(2)
    client = system.naive_client()

    def main():
        file_id = yield from client.create("skewed")
        efs = system.efs_client(1)  # append to slot 1 only: block 0 missing
        yield from efs.append(file_id, b"orphan")
        try:
            yield from client.open("skewed")
        except (ValueError, BridgeBadRequestError):
            return "caught"

    assert system.run(main()) == "caught"


def test_hints_are_dropped_on_delete():
    system = make_system(2)
    client = system.naive_client()

    def main():
        yield from client.create("hinted")
        yield from client.seq_write("hinted", b"a")
        yield from client.open("hinted")
        yield from client.seq_read("hinted")
        yield from client.delete("hinted")
        return sorted(system.bridge._hints)

    hints = system.run(main())
    assert all(name != "hinted" for name, _slot in hints)


def test_create_width_zero_rejected():
    system = make_system(2)
    client = system.naive_client()

    def main():
        try:
            yield from client.create("none", node_slots=[])
        except BridgeBadRequestError:
            return "caught"

    assert system.run(main()) == "caught"
