"""S18 coherence: the cached system is observationally identical.

The Bridge block cache plus read-ahead may change *when* things happen,
never *what* a reader sees.  These tests drive randomized interleavings
of sequential/random/list reads and writes through the Bridge twice —
once with the cache+prefetcher on, once with the stock configuration —
and require byte-identical observations, byte-identical final file
contents, and fsck-clean LFS state on both sides.  Parity-protected
degraded reads (which bypass the Bridge cache by design) get the same
treatment.
"""

import random

import pytest

from repro.efs.fsck import check_system
from repro.faults import FaultInjector
from repro.harness.builders import BridgeSystem, paper_system
from repro.storage import FixedLatency
from repro.workloads import pattern_chunks


def block_payload(tag, index):
    return (b"%s-%06d|" % (tag, index)) * 2


def make_script(seed, ops=120, max_blocks=48):
    """A reproducible op sequence; writes reference only valid targets."""
    rng = random.Random(seed)
    script = []
    size = 0
    serial = 0
    for _ in range(ops):
        choices = ["seq_write"]
        if size:
            choices += ["seq_read", "random_read", "random_write",
                        "list_read", "list_write", "reopen"]
        op = rng.choice(choices)
        if op == "seq_write" and size < max_blocks:
            script.append(("seq_write", block_payload(b"W", serial)))
            serial += 1
            size += 1
        elif op == "random_write":
            block = rng.randrange(size)
            script.append(("random_write", block, block_payload(b"R", serial)))
            serial += 1
        elif op == "random_read":
            script.append(("random_read", rng.randrange(size)))
        elif op == "seq_read":
            script.append(("seq_read",))
        elif op == "list_read":
            count = rng.randint(1, min(6, size))
            blocks = rng.sample(range(size), count)
            script.append(("list_read", blocks))
        elif op == "list_write":
            count = rng.randint(1, min(4, size))
            targets = rng.sample(range(size), count)
            writes = []
            for block in targets:
                writes.append((block, block_payload(b"L", serial)))
                serial += 1
            script.append(("list_write", writes))
        elif op == "reopen":
            script.append(("reopen",))
    return script


def run_script(script, p=4, seed=5, **kwargs):
    """Apply the script through one Bridge; returns (observations, final
    contents, system)."""
    system = BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0005), **kwargs
    )
    client = system.naive_client()
    observations = []

    def body():
        yield from client.create("f")
        for step in script:
            op = step[0]
            if op == "seq_write":
                yield from client.seq_write("f", step[1])
            elif op == "random_write":
                yield from client.random_write("f", step[1], step[2])
            elif op == "list_write":
                yield from client.list_write("f", step[1])
            elif op == "seq_read":
                number, data = yield from client.seq_read("f")
                observations.append(("seq", number, data))
            elif op == "random_read":
                data = yield from client.random_read("f", step[1])
                observations.append(("random", step[1], data))
            elif op == "list_read":
                data = yield from client.list_read("f", step[1])
                observations.append(("list", tuple(step[1]), tuple(data)))
            elif op == "reopen":
                yield from client.open("f")
        final = yield from client.read_all("f")
        return final

    final = system.run(body(), name="coherence-script")
    return observations, final, system


@pytest.mark.parametrize("script_seed", [1, 2, 3, 4, 5])
def test_randomized_interleavings_cache_on_equals_off(script_seed):
    script = make_script(script_seed)
    base_obs, base_final, base_system = run_script(script)
    cached_obs, cached_final, cached_system = run_script(
        script, prefetch_window=2
    )
    assert cached_obs == base_obs
    assert cached_final == base_final
    assert all(report.clean for report in check_system(base_system))
    assert all(report.clean for report in check_system(cached_system))
    stats = cached_system.bridge.bridge_cache_stats()
    # The script must actually exercise the protocol, not dodge it.
    assert stats["invalidations"] > 0 or stats["hits"] > 0


def test_heavy_write_interleaving_never_serves_stale_bytes():
    # Alternating write/read on the same blocks: every read must see the
    # latest write even while prefetched data for the old contents is in
    # flight.
    def run(**kwargs):
        system = BridgeSystem(
            4, seed=9, disk_latency=FixedLatency(0.0005), **kwargs
        )
        client = system.naive_client()
        log = []

        def body():
            yield from client.create("f")
            for index in range(24):
                yield from client.seq_write("f", block_payload(b"A", index))
            yield from client.open("f")
            for round_number in range(4):
                for block in range(24):
                    payload = block_payload(
                        b"B%d" % round_number, block
                    )
                    yield from client.random_write("f", block, payload)
                    data = yield from client.random_read("f", block)
                    log.append(data)
                    assert data[: len(payload)] == payload
            return log

        return system.run(body(), name="stale-check"), system

    base_log, _ = run()
    cached_log, cached_system = run(prefetch_window=1, bridge_cache_blocks=8)
    assert cached_log == base_log
    assert cached_system.bridge.bridge_cache_stats()["invalidations"] > 0


def test_delete_and_recreate_does_not_resurrect_cached_blocks():
    def run(**kwargs):
        system = BridgeSystem(
            4, seed=17, disk_latency=FixedLatency(0.0005), **kwargs
        )
        client = system.naive_client()

        def body():
            yield from client.create("f")
            for index in range(8):
                yield from client.seq_write("f", block_payload(b"OLD", index))
            first = yield from client.read_all("f")
            yield from client.delete("f")
            yield from client.create("f")
            for index in range(8):
                yield from client.seq_write("f", block_payload(b"NEW", index))
            second = yield from client.read_all("f")
            return first, second

        return system.run(body(), name="recreate")

    base_first, base_second = run()
    cached_first, cached_second = run(prefetch_window=1)
    assert cached_first == base_first
    assert cached_second == base_second
    assert all(c.startswith(b"NEW") for c in cached_second)


def test_degraded_parity_reads_unaffected_by_bridge_cache():
    def run(**kwargs):
        system = paper_system(4, seed=23, redundancy="parity", **kwargs)
        rfile = system.redundant_file("protected")
        chunks = pattern_chunks(16)

        def setup():
            yield from rfile.create()
            yield from rfile.write_all(chunks)

        system.run(setup(), name="setup")

        def read_all():
            read_chunks, _stats = yield from rfile.read_all()
            return read_chunks

        healthy = system.run(read_all(), name="healthy")
        for efs in system.efs_servers:
            system.run(efs.cache.flush(), name="flush")
            efs.cache.invalidate_all()
        FaultInjector(system).fail_slot(1)
        degraded = system.run(read_all(), name="degraded")
        return healthy, degraded, system

    base_healthy, base_degraded, _ = run()
    cached_healthy, cached_degraded, cached_system = run(prefetch_window=2)
    assert cached_healthy == base_healthy
    assert cached_degraded == base_degraded
    assert base_degraded == base_healthy
    # Parity traffic is tool-style (direct to the LFS): the Bridge cache
    # must never have seen any of it.
    stats = cached_system.bridge.bridge_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 0
