"""Tests for the Bridge Server: file management and the naive view."""

import pytest

from repro.errors import (
    BridgeBadRequestError,
    BridgeFileExistsError,
    BridgeFileNotFoundError,
)
from tests.core.conftest import make_system


def data_for(index):
    return f"block-{index:05d}|".encode() * 3


# ---------------------------------------------------------------------------
# Create / Delete / Open
# ---------------------------------------------------------------------------


def test_create_makes_constituents_on_every_lfs(fast_system):
    client = fast_system.naive_client()

    def body():
        file_id = yield from client.create("alpha")
        present = []
        for slot in range(fast_system.width):
            efs = fast_system.efs_client(slot, node=fast_system.client_node)
            present.append((yield from efs.exists(file_id)))
        return file_id, present

    file_id, present = fast_system.run(body())
    assert file_id >= 1
    assert present == [True] * 4


def test_create_duplicate_rejected(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("dup")
        try:
            yield from client.create("dup")
        except BridgeFileExistsError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_create_with_width_subset(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("narrow", width=2)
        result = yield from client.open("narrow")
        return result

    result = fast_system.run(body())
    assert result.width == 2
    assert [c.node_index for c in result.constituents] == [0, 1]


def test_create_with_explicit_slots(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("picked", node_slots=[1, 3])
        result = yield from client.open("picked")
        return result

    result = fast_system.run(body())
    assert [c.node_index for c in result.constituents] == [1, 3]


def test_create_rejects_bad_slots(fast_system):
    client = fast_system.naive_client()

    def body():
        try:
            yield from client.create("bad", node_slots=[0, 9])
        except BridgeBadRequestError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_create_rejects_bad_start(fast_system):
    client = fast_system.naive_client()

    def body():
        try:
            yield from client.create("bad-start", width=2, start=5)
        except BridgeBadRequestError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_open_unknown_file(fast_system):
    client = fast_system.naive_client()

    def body():
        try:
            yield from client.open("ghost")
        except BridgeFileNotFoundError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_delete_removes_everything(fast_system):
    client = fast_system.naive_client()

    def body():
        file_id = yield from client.create("victim")
        for index in range(8):
            yield from client.seq_write("victim", data_for(index))
        freed = yield from client.delete("victim")
        remains = []
        for slot in range(fast_system.width):
            efs = fast_system.efs_client(slot, node=fast_system.client_node)
            remains.append((yield from efs.exists(file_id)))
        try:
            yield from client.open("victim")
        except BridgeFileNotFoundError:
            reopened = False
        return freed, remains, reopened

    freed, remains, reopened = fast_system.run(body())
    assert freed == 8
    assert remains == [False] * 4
    assert reopened is False


def test_delete_unknown_file(fast_system):
    client = fast_system.naive_client()

    def body():
        try:
            yield from client.delete("ghost")
        except BridgeFileNotFoundError:
            return "caught"

    assert fast_system.run(body()) == "caught"


# ---------------------------------------------------------------------------
# Naive sequential view
# ---------------------------------------------------------------------------


def test_write_then_read_roundtrip(fast_system):
    client = fast_system.naive_client()
    payload = [data_for(i) for i in range(13)]  # not a multiple of width

    def body():
        yield from client.create("seq")
        yield from client.write_all("seq", payload)
        chunks = yield from client.read_all("seq")
        return chunks

    chunks = fast_system.run(body())
    assert len(chunks) == 13
    for expected, actual in zip(payload, chunks):
        assert actual.startswith(expected)


def test_blocks_distributed_round_robin(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("rr")
        for index in range(8):
            yield from client.seq_write("rr", data_for(index))
        result = yield from client.open("rr")
        return result

    result = fast_system.run(body())
    assert result.total_blocks == 8
    assert [c.size_blocks for c in result.constituents] == [2, 2, 2, 2]


def test_seq_read_eof_signalling(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("short")
        yield from client.seq_write("short", b"only block")
        yield from client.open("short")
        first = yield from client.seq_read("short")
        second = yield from client.seq_read("short")
        return first, second

    first, second = fast_system.run(body())
    assert first[0] == 0 and first[1].startswith(b"only block")
    assert second == (None, None)


def test_open_resets_cursor(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("rewind")
        yield from client.seq_write("rewind", b"A")
        yield from client.seq_write("rewind", b"B")
        yield from client.open("rewind")
        yield from client.seq_read("rewind")
        yield from client.open("rewind")  # rewind
        block_number, data = yield from client.seq_read("rewind")
        return block_number, data

    block_number, data = fast_system.run(body())
    assert block_number == 0
    assert data.startswith(b"A")


def test_random_read(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("rand")
        for index in range(9):
            yield from client.seq_write("rand", data_for(index))
        yield from client.open("rand")
        data5 = yield from client.random_read("rand", 5)
        data0 = yield from client.random_read("rand", 0)
        data8 = yield from client.random_read("rand", 8)
        return data5, data0, data8

    data5, data0, data8 = fast_system.run(body())
    assert data5.startswith(data_for(5))
    assert data0.startswith(data_for(0))
    assert data8.startswith(data_for(8))


def test_random_read_out_of_range(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("bounds")
        yield from client.seq_write("bounds", b"x")
        yield from client.open("bounds")
        try:
            yield from client.random_read("bounds", 1)
        except BridgeBadRequestError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_random_write_in_place(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("rw")
        for index in range(6):
            yield from client.seq_write("rw", data_for(index))
        yield from client.open("rw")
        yield from client.random_write("rw", 3, b"PATCHED")
        chunks = yield from client.read_all("rw")
        return chunks

    chunks = fast_system.run(body())
    assert chunks[3].startswith(b"PATCHED")
    assert chunks[2].startswith(data_for(2))


def test_random_write_extends_at_end(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("grow")
        yield from client.seq_write("grow", b"0")
        yield from client.open("grow")
        yield from client.random_write("grow", 1, b"1")
        result = yield from client.open("grow")
        return result.total_blocks

    assert fast_system.run(body()) == 2


def test_random_write_beyond_end_rejected(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("sparse")
        try:
            yield from client.random_write("sparse", 3, b"hole")
        except BridgeBadRequestError:
            return "caught"

    assert fast_system.run(body()) == "caught"


def test_open_sees_tool_side_appends(fast_system):
    """Tools write directly to LFS instances; the next open must re-sync."""
    client = fast_system.naive_client()

    def body():
        file_id = yield from client.create("shared", width=2)
        # a "tool" appends one block to each constituent behind the
        # server's back, in round-robin order (slots 0 then 1)
        for slot in range(2):
            efs = fast_system.efs_client(slot)
            yield from efs.append(file_id, data_for(slot))
        result = yield from client.open("shared")
        chunks = yield from client.read_all("shared")
        return result.total_blocks, chunks

    total, chunks = fast_system.run(body())
    assert total == 2
    assert chunks[0].startswith(data_for(0))
    assert chunks[1].startswith(data_for(1))


def test_get_info_lists_all_lfs(fast_system):
    client = fast_system.naive_client()

    def body():
        return (yield from client.get_info())

    info = fast_system.run(body())
    assert info.width == 4
    assert [h.node_index for h in info.lfs] == [0, 1, 2, 3]
    assert info.server_port is fast_system.bridge.port


def test_interleaving_with_nonzero_start(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("offset", start=2)
        for index in range(5):
            yield from client.seq_write("offset", data_for(index))
        result = yield from client.open("offset")
        chunks = yield from client.read_all("offset")
        return result, chunks

    result, chunks = fast_system.run(body())
    assert result.start == 2
    # block 0 lives on slot 2
    assert result.constituents[2].size_blocks == 2
    assert result.constituents[1].size_blocks == 1
    for index in range(5):
        assert chunks[index].startswith(data_for(index))


def test_many_files_coexist(fast_system):
    client = fast_system.naive_client()

    def body():
        for name in ("one", "two", "three"):
            yield from client.create(name)
            yield from client.seq_write(name, name.encode())
        out = {}
        for name in ("one", "two", "three"):
            chunks = yield from client.read_all(name)
            out[name] = chunks[0]
        return out

    out = fast_system.run(body())
    for name in ("one", "two", "three"):
        assert out[name].startswith(name.encode())


def test_width_one_file_on_wide_system(fast_system):
    client = fast_system.naive_client()

    def body():
        yield from client.create("solo", width=1)
        for index in range(4):
            yield from client.seq_write("solo", data_for(index))
        result = yield from client.open("solo")
        return result

    result = fast_system.run(body())
    assert result.width == 1
    assert result.constituents[0].size_blocks == 4
