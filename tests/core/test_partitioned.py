"""Tests for the hash-partitioned distributed Bridge Server (E17)."""

import pytest

from repro.core.partitioned import PartitionedBridge, PartitionedClient
from repro.elastic.ring import ModuloRing
from repro.errors import BridgeFileNotFoundError
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency


def make_system(servers=2, p=4, seed=67):
    return BridgeSystem(
        p,
        seed=seed,
        disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers,
    )


def test_routing_deterministic_and_in_range():
    ring = ModuloRing(4)
    for name in ("a", "b", "some/longer/name", ""):
        index = ring.partition_of(name)
        assert 0 <= index < 4
        assert index == ring.partition_of(name)


def test_ring_rejects_zero_partitions():
    with pytest.raises(ValueError):
        ModuloRing(0)


def test_partitioned_bridge_requires_servers():
    with pytest.raises(ValueError):
        PartitionedBridge([])


def test_builder_creates_requested_servers():
    system = make_system(servers=3)
    assert len(system.bridges) == 3
    assert system.bridge is system.bridges[0]
    assert len({b.node.index for b in system.bridges}) == 3


def test_files_distribute_across_partitions():
    system = make_system(servers=4)
    client = system.partitioned_client()
    names = [f"file-{i}" for i in range(32)]

    def body():
        for name in names:
            yield from client.create(name)
            yield from client.seq_write(name, name.encode())

    system.run(body())
    counts = [len(b.directory) for b in system.bridges]
    assert sum(counts) == 32
    assert all(count > 0 for count in counts)  # every partition used


def test_partitioned_roundtrip():
    system = make_system(servers=2)
    client = system.partitioned_client()

    def body():
        out = {}
        for name in ("alpha", "beta", "gamma"):
            yield from client.create(name)
            yield from client.seq_write(name, name.encode())
            chunks = yield from client.read_all(name)
            out[name] = chunks[0]
        return out

    out = system.run(body())
    for name, chunk in out.items():
        assert chunk.startswith(name.encode())


def test_partitioned_delete_routes_correctly():
    system = make_system(servers=3)
    client = system.partitioned_client()

    def body():
        yield from client.create("victim")
        yield from client.seq_write("victim", b"x")
        freed = yield from client.delete("victim")
        try:
            yield from client.open("victim")
        except BridgeFileNotFoundError:
            return freed, "gone"

    assert system.run(body()) == (1, "gone")


def test_partition_isolation():
    """A name only exists in its own partition."""
    system = make_system(servers=2)
    client = system.partitioned_client()

    def body():
        yield from client.create("only-here")

    system.run(body())
    owner = system.fabric.partition_of("only-here")
    assert system.bridges[owner].directory.exists("only-here")
    assert not system.bridges[1 - owner].directory.exists("only-here")


def test_partitioned_get_info():
    system = make_system(servers=2)
    client = system.partitioned_client()

    def body():
        return (yield from client.get_info())

    info = system.run(body())
    assert info.width == 4


def test_many_clients_scale_with_partitions():
    """The paper's bottleneck remark: concurrent naive traffic gets
    faster when the central server becomes a distributed collection."""

    def makespan(servers):
        system = BridgeSystem(
            4, seed=68, bridge_server_count=servers
        )  # real 15 ms disks
        client_count = 8
        blocks = 12
        clients = [system.partitioned_client() for _ in range(client_count)]

        def worker(index, client):
            name = f"c{index}"
            yield from client.create(name)
            for b in range(blocks):
                yield from client.seq_write(name, b"w" * 64)
            yield from client.open(name)
            while True:
                block, _ = yield from client.seq_read(name)
                if block is None:
                    return

        processes = [
            system.client_node.spawn(worker(i, c), name=f"client{i}")
            for i, c in enumerate(clients)
        ]
        system.sim.run()
        assert all(p.done for p in processes)
        return system.sim.now

    single = makespan(1)
    quad = makespan(4)
    assert quad < single * 0.7
