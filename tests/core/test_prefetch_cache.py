"""S18: the Bridge-server block cache and striped read-ahead pipeline.

Covers the acceptance criteria of the pipeline: >= 3x on the p = 8
sequential read with byte-identical results, exact reproduction of the
closed-form hit latency in the steady state, seed-identical behavior
with the cache off, and the cache/prefetcher unit semantics.
"""

import collections

import pytest

from repro.analysis.models import (
    pipelined_client_bound,
    pipelined_hit_seconds,
    pipelined_read_seconds,
)
from repro.core import BridgeBlockCache, SequentialDetector
from repro.harness.builders import paper_system
from repro.workloads import build_file, pattern_chunks


def stream_file(system, name, count=None):
    """Open + timed sequential read loop; returns (elapsed, chunks)."""
    client = system.naive_client()

    def body():
        yield from client.open(name)
        start = system.sim.now
        chunks = []
        while True:
            block_number, data = yield from client.seq_read(name)
            if block_number is None:
                break
            chunks.append(data)
            if count is not None and len(chunks) >= count:
                break
        return system.sim.now - start, chunks

    return system.run(body(), name="stream")


def build_and_stream(p, blocks, seed=7, **kwargs):
    system = paper_system(p, seed=seed, **kwargs)
    build_file(system, "f", pattern_chunks(blocks))
    elapsed, chunks = stream_file(system, "f")
    return elapsed, chunks, system


# ---------------------------------------------------------------------------
# The headline acceptance criterion
# ---------------------------------------------------------------------------


def test_pipelined_read_3x_at_p8_with_identical_bytes():
    baseline, base_chunks, _ = build_and_stream(8, 256)
    piped, piped_chunks, system = build_and_stream(8, 256, prefetch_window=1)
    assert piped_chunks == base_chunks
    assert baseline / piped >= 3.0
    stats = system.bridge.bridge_cache_stats()
    assert stats["hits"] >= 250
    assert stats["prefetch_wasted"] == 0


@pytest.mark.parametrize("window", [1, 2, 4])
def test_deeper_windows_not_slower(window):
    baseline, base_chunks, _ = build_and_stream(8, 128)
    piped, piped_chunks, _ = build_and_stream(8, 128, prefetch_window=window)
    assert piped_chunks == base_chunks
    assert piped < baseline


def test_cache_off_reproduces_seed_run_exactly():
    # Explicitly-off knobs must not merely be "about as fast" as the
    # default build — the very same events must execute.
    default_elapsed, default_chunks, default_system = build_and_stream(4, 64)
    off_elapsed, off_chunks, off_system = build_and_stream(
        4, 64, prefetch_window=0, bridge_cache_blocks=0
    )
    assert off_elapsed == default_elapsed
    assert off_chunks == default_chunks
    assert off_system.sim.events_executed == default_system.sim.events_executed
    assert off_system.bridge.bridge_cache_stats() is None


# ---------------------------------------------------------------------------
# The exact latency model
# ---------------------------------------------------------------------------


def test_steady_state_matches_exact_hit_model():
    system = paper_system(8, seed=7, prefetch_window=1)
    build_file(system, "f", pattern_chunks(256))
    client = system.naive_client()
    times = []

    def body():
        yield from client.open("f")
        for _ in range(256):
            yield from client.seq_read("f")
            times.append(system.sim.now)

    system.run(body(), name="timed-stream")
    model = pipelined_hit_seconds(system.config)
    deltas = [round(b - a, 10) for a, b in zip(times, times[1:])]
    histogram = collections.Counter(deltas)
    common, count = histogram.most_common(1)[0]
    assert common == pytest.approx(model, abs=1e-12)
    # Every delta beyond stream recognition and the occasional catch-up
    # must be exactly one hit round trip.
    assert count >= 250
    assert pipelined_client_bound(8, system.config)
    predicted = pipelined_read_seconds(256, 8, system.config)
    elapsed = times[-1] - times[0]
    # The measured run adds only start-up misses on top of the model.
    assert predicted <= elapsed <= predicted * 1.15


def test_pipelined_model_validates_inputs():
    with pytest.raises(ValueError):
        pipelined_client_bound(0)
    with pytest.raises(ValueError):
        pipelined_read_seconds(-1, 4)


# ---------------------------------------------------------------------------
# Parallel view: double-buffered stripes
# ---------------------------------------------------------------------------


def run_parallel_read(p, blocks, seed=11, **kwargs):
    from repro.core import JobController, ParallelWorker
    from repro.sim import join_all

    system = paper_system(p, seed=seed, **kwargs)
    build_file(system, "f", pattern_chunks(blocks))
    client = system.naive_client()
    system.run(client.open("f"), name="open")
    workers = [ParallelWorker(system.client_node, i) for i in range(p)]
    received = {i: [] for i in range(p)}

    def worker_body(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return
            received[worker.index].append((delivery.block_number, delivery.data))

    worker_processes = [
        system.client_node.spawn(worker_body(w), name=f"worker{w.index}")
        for w in workers
    ]

    def main():
        controller = JobController(system.client_node, system.bridge.port)
        yield from controller.open("f", [w.port for w in workers])
        start = system.sim.now
        for _ in range(-(-blocks // p) + 1):  # one extra round for EOF
            yield from controller.read()
        yield join_all(worker_processes)
        return system.sim.now - start

    elapsed = system.run(main(), name="parallel-read")
    ordered = sorted(
        (block, data) for chunks in received.values() for block, data in chunks
    )
    return elapsed, ordered


def test_parallel_read_double_buffered_identical_and_faster():
    baseline, base_chunks = run_parallel_read(4, 64)
    piped, piped_chunks = run_parallel_read(4, 64, prefetch_window=1)
    assert piped_chunks == base_chunks
    assert len(piped_chunks) == 64
    assert piped < baseline


# ---------------------------------------------------------------------------
# Knobs and construction
# ---------------------------------------------------------------------------


def test_cache_auto_sizes_from_window():
    system = paper_system(8, prefetch_window=2)
    assert system.bridge._cache is not None
    assert system.bridge._cache.capacity == 4 * 2 * 8
    explicit = paper_system(8, prefetch_window=2, bridge_cache_blocks=10)
    assert explicit.bridge._cache.capacity == 10


def test_cache_only_configuration_serves_repeat_reads():
    system = paper_system(4, seed=3, bridge_cache_blocks=64)
    build_file(system, "f", pattern_chunks(32))
    cold, cold_chunks = stream_file(system, "f")
    warm, warm_chunks = stream_file(system, "f")
    assert warm_chunks == cold_chunks
    assert warm < cold
    stats = system.bridge.bridge_cache_stats()
    assert stats["hits"] >= 32
    assert stats["prefetch_installs"] == 0


# ---------------------------------------------------------------------------
# Unit: sequential detector
# ---------------------------------------------------------------------------


def test_detector_recognizes_runs_and_resets():
    det = SequentialDetector(threshold=2)
    assert not det.observe("f", 0)
    assert det.observe("f", 1)
    assert det.observe("f", 2)
    assert not det.observe("f", 9)  # jump resets the run
    assert det.observe("f", 10)
    assert det.recognitions == 2


def test_detector_ignores_random_traffic():
    det = SequentialDetector(threshold=2)
    for block in (5, 3, 8, 1, 12, 7):
        assert not det.observe("f", block)
    det.forget("f")
    assert not det.observe("f", 8)  # 7 -> 8 run was forgotten


def test_detector_rejects_bad_threshold():
    with pytest.raises(ValueError):
        SequentialDetector(threshold=0)


# ---------------------------------------------------------------------------
# Unit: the Bridge block cache
# ---------------------------------------------------------------------------


def test_cache_lru_eviction_and_counters():
    cache = BridgeBlockCache(2)
    cache.install("f", 0, b"a")
    cache.install("f", 1, b"b")
    assert cache.lookup("f", 0) == b"a"  # touches 0; 1 becomes LRU
    cache.install("f", 2, b"c")
    assert cache.evictions == 1
    assert cache.lookup("f", 1) is None
    assert cache.lookup("f", 0) == b"a"
    assert cache.hits == 2 and cache.misses == 1


def test_cache_invalidate_bumps_generation_and_counts_waste():
    cache = BridgeBlockCache(8)
    generation = cache.generation("f")
    cache.install("f", 0, b"a", prefetched=True)
    cache.invalidate_block("f", 0)
    assert cache.generation("f") == generation + 1
    assert cache.prefetch_wasted == 1
    assert cache.lookup("f", 0) is None
    cache.install("f", 1, b"b", prefetched=True)
    cache.install("g", 0, b"c")
    cache.invalidate_file("f")
    assert cache.prefetch_wasted == 2
    assert cache.contains("g", 0)


def test_cache_prefetch_used_accounting():
    cache = BridgeBlockCache(4)
    cache.install("f", 0, b"a", prefetched=True)
    assert cache.lookup("f", 0) == b"a"
    assert cache.prefetch_used == 1
    assert cache.lookup("f", 0) == b"a"  # flag cleared: counted once
    assert cache.prefetch_used == 1
    cache.install("f", 1, b"b", prefetched=True)
    cache.mark_used("f", 1)
    cache.mark_used("f", 1)
    assert cache.prefetch_used == 2


def test_cache_peek_has_no_hit_miss_accounting():
    cache = BridgeBlockCache(4)
    cache.install("f", 0, b"a")
    assert cache.peek("f", 0) == b"a"
    assert cache.peek("f", 1) is None
    assert cache.hits == 0 and cache.misses == 0


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        BridgeBlockCache(0)
