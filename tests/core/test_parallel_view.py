"""Tests for the parallel-open view: jobs, lock-step transfers, virtual
parallelism (t > p), parallel writes via deposits, and tree create."""

import pytest

from repro.core import JobController, ParallelWorker
from repro.errors import BridgeJobError
from repro.sim import join_all
from tests.core.conftest import make_system


def data_for(index):
    return f"pblock-{index:04d}|".encode()


def run_parallel_read(system, name, total_blocks, worker_count, rounds=None):
    """Write a file naively, then read it with a worker job.

    Returns (per-worker deliveries, controller read results).
    """
    client = system.naive_client()
    received = {i: [] for i in range(worker_count)}

    def writer():
        yield from client.create(name)
        for index in range(total_blocks):
            yield from client.seq_write(name, data_for(index))
        yield from client.open(name)

    system.run(writer())

    workers = [
        ParallelWorker(system.client_node, i, name=f"{name}-w") for i in range(worker_count)
    ]

    def worker_body(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return
            received[worker.index].append((delivery.block_number, delivery.data))

    def controller_body():
        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open(name, [w.port for w in workers])
        counts = []
        n_rounds = rounds
        if n_rounds is None:
            n_rounds = -(-total_blocks // worker_count) + 1  # one extra for EOF
        for _ in range(n_rounds):
            counts.append((yield from controller.read()))
        return job, counts

    worker_processes = [
        system.client_node.spawn(worker_body(w), name=f"worker{w.index}")
        for w in workers
    ]

    def main():
        result = yield from controller_body()
        yield join_all(worker_processes)
        return result

    job, counts = system.run(main())
    return received, counts, job


def test_parallel_read_t_equals_p():
    system = make_system(4)
    received, counts, job = run_parallel_read(system, "pr1", 8, 4)
    assert job.width == 4
    assert counts == [4, 4, 0]
    # worker i got blocks i, i+4
    for index in range(4):
        blocks = [b for b, _d in received[index]]
        assert blocks == [index, index + 4]
        for block, data in received[index]:
            assert data.startswith(data_for(block))


def test_parallel_read_virtual_parallelism_t_greater_than_p():
    system = make_system(2)
    received, counts, _job = run_parallel_read(system, "pr2", 12, 6, rounds=3)
    assert counts == [6, 6, 0]
    for index in range(6):
        blocks = [b for b, _d in received[index]]
        assert blocks == [index, index + 6]


def test_parallel_read_fewer_workers_than_p():
    system = make_system(4)
    received, counts, _job = run_parallel_read(system, "pr3", 6, 2, rounds=4)
    assert counts == [2, 2, 2, 0]
    assert [b for b, _ in received[0]] == [0, 2, 4]
    assert [b for b, _ in received[1]] == [1, 3, 5]


def test_parallel_read_ragged_eof():
    """With 5 blocks and 4 workers, the second round delivers one real
    block and three EOFs."""
    system = make_system(4)
    received, counts, _job = run_parallel_read(system, "pr4", 5, 4, rounds=3)
    assert counts == [4, 1, 0]
    assert [b for b, _ in received[0]] == [0, 4]
    for index in (1, 2, 3):
        assert [b for b, _ in received[index]] == [index]


def test_parallel_write_collects_deposits():
    system = make_system(4)
    client = system.naive_client()
    worker_count = 4
    rounds = 3
    workers = [ParallelWorker(system.client_node, i) for i in range(worker_count)]

    def setup():
        yield from client.create("pw")
        yield from client.open("pw")

    system.run(setup())

    def main():
        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("pw", [w.port for w in workers])
        for round_index in range(rounds):
            for worker in workers:
                block = round_index * worker_count + worker.index
                worker.deposit(job, data_for(block))
            total = yield from controller.write()
        yield from controller.close()
        chunks = yield from client.read_all("pw")
        return total, chunks

    total, chunks = system.run(main())
    assert total == worker_count * rounds
    assert len(chunks) == 12
    for index, chunk in enumerate(chunks):
        assert chunk.startswith(data_for(index))


def test_parallel_write_virtual_parallelism():
    system = make_system(2)
    client = system.naive_client()
    workers = [ParallelWorker(system.client_node, i) for i in range(5)]

    def main():
        yield from client.create("pwv")
        yield from client.open("pwv")
        controller = JobController(system.client_node, system.bridge.port)
        job = yield from controller.open("pwv", [w.port for w in workers])
        for worker in workers:
            worker.deposit(job, data_for(worker.index))
        total = yield from controller.write()
        chunks = yield from client.read_all("pwv")
        return total, chunks

    total, chunks = system.run(main())
    assert total == 5
    for index, chunk in enumerate(chunks):
        assert chunk.startswith(data_for(index))


def test_job_requires_workers():
    system = make_system(2)

    def main():
        controller = JobController(system.client_node, system.bridge.port)
        client = system.naive_client()
        yield from client.create("empty-job")
        try:
            yield from controller.open("empty-job", [])
        except BridgeJobError:
            return "caught"

    assert system.run(main()) == "caught"


def test_unknown_job_rejected():
    system = make_system(2)
    from repro.machine import Client

    def main():
        rpc = Client(system.client_node)
        try:
            yield from rpc.call(system.bridge.port, "parallel_read", job_id=999)
        except BridgeJobError:
            return "caught"

    assert system.run(main()) == "caught"


def test_close_discards_job():
    system = make_system(2)
    workers = [ParallelWorker(system.client_node, 0)]

    def main():
        client = system.naive_client()
        yield from client.create("closing")
        controller = JobController(system.client_node, system.bridge.port)
        yield from controller.open("closing", [w.port for w in workers])
        job_id = controller.job.job_id
        yield from controller.close()
        from repro.machine import Client

        rpc = Client(system.client_node)
        try:
            yield from rpc.call(system.bridge.port, "parallel_read", job_id=job_id)
        except BridgeJobError:
            return "caught"

    assert system.run(main()) == "caught"


def test_controller_requires_open_before_read():
    system = make_system(2)
    controller = JobController(system.client_node, system.bridge.port)
    with pytest.raises(RuntimeError):
        next(controller.read())


# ---------------------------------------------------------------------------
# Lock-step penalty (section 4.1/6): virtual parallelism cannot beat p
# ---------------------------------------------------------------------------


def test_virtual_parallelism_lockstep_penalty():
    """Reading with t=2p workers must take roughly as long as two rounds of
    t=p, not one: the extra 'parallelism' is simulated, not real."""

    def timed_read(worker_count):
        system = make_system(4, fast=False, seed=33)
        received, _counts, _job = run_parallel_read(
            system, "lock", 32, worker_count
        )
        return system.sim.now

    wide = timed_read(8)   # t = 2p
    narrow = timed_read(4)  # t = p
    # Same data volume moved; virtual width cannot make it faster.
    assert wide >= narrow * 0.9


# ---------------------------------------------------------------------------
# Tree create (section 4.5 improvement)
# ---------------------------------------------------------------------------


def test_tree_create_equivalent_and_faster_at_scale():
    from repro.config import DEFAULT_CONFIG
    from repro.harness.builders import BridgeSystem
    from repro.storage import FixedLatency

    def create_time(use_tree, p=16):
        config = DEFAULT_CONFIG.with_changes(create_uses_tree=use_tree)
        system = BridgeSystem(
            p, config=config, seed=7, disk_latency=FixedLatency(0.015)
        )
        client = system.naive_client()

        def body():
            start = system.sim.now
            yield from client.create("tree-test")
            elapsed = system.sim.now - start
            result = yield from client.open("tree-test")
            return elapsed, result

        elapsed, result = system.run(body())
        assert result.width == p
        return elapsed

    sequential = create_time(False)
    tree = create_time(True)
    assert tree < sequential
