"""End-to-end S24: the experiment runner and its result record.

One small Zipf-skewed run per arm — enough traffic for the heat map to
see the skew, short enough for CI — checking the record's derived
fields and the safety oracle's verdict rather than re-asserting the
E25 headline (that's the bench's job, at bench scale).
"""

from repro.harness.experiments import run_rebalance_experiment


def run(active):
    return run_rebalance_experiment(
        rate=90.0, duration=6.0, servers=4, seed=7, files=24, blocks=6,
        skew=1.2, active=active,
    )


def test_watch_arm_records_without_acting():
    run_off = run(active=False)
    assert not run_off.active
    assert run_off.actions == 0 and run_off.moves == 0
    assert run_off.sweeps, "the watcher still sweeps"
    assert run_off.route_bound_final == run_off.route_bound_static
    assert run_off.files_intact and run_off.fsck_clean
    assert run_off.content_mismatched == 0
    assert int(run_off.summary["failed"]) == 0
    assert len(run_off.busy_fractions) == 4
    assert 0.0 <= run_off.utilization_spread <= 1.0
    assert run_off.p99("read") > 0
    assert len(run_off.p99_trajectory("read")) == len(run_off.sweeps)


def test_active_arm_stays_safe_while_acting():
    run_on = run(active=True)
    assert run_on.active
    assert run_on.actions >= 1, [s["action"] for s in run_on.sweeps]
    assert run_on.moves >= 1 and run_on.arcs_shed >= 1
    assert run_on.files_intact and run_on.fsck_clean
    assert run_on.content_mismatched == 0
    assert run_on.route_bound_final > run_on.route_bound_static
    assert run_on.goodput > 0
    assert run_on.heat["recorded"] > 0
