"""S24 control-loop behavior: wiring, decision gates, live shedding.

The policy is deliberately boring — a gated greedy loop — so every gate
gets a test: idle fabric, balanced fabric, cooldown after acting, no
shed candidate, watch-only.  The acting path is tested against a real
fabric: files created through the partitioned client, synthetic heat
painted on one partition, one sweep run, and then the ownership map is
re-derived from the live ring to prove nothing was stranded.
"""

import pytest

from repro.harness.builders import BridgeSystem
from repro.rebalance import HeatMap, RebalanceConfig, Rebalancer
from repro.storage import FixedLatency


def make_system(rebalance=True, servers=4, seed=11, **kwargs):
    return BridgeSystem(
        4, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, rebalance=rebalance, **kwargs,
    )


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------


def test_rebalance_off_by_default():
    system = BridgeSystem(2, seed=0)
    assert system.heat is None
    assert system.rebalancer is None
    # No heat seam installed on any server.
    assert all(bridge.heat is None for bridge in system.bridges)


def test_rebalance_knob_implies_elastic_and_installs_heat():
    system = make_system(rebalance=True)
    assert system.fabric.ring.kind == "consistent"
    assert isinstance(system.heat, HeatMap)
    assert all(bridge.heat is system.heat for bridge in system.bridges)
    assert [bridge.heat_partition for bridge in system.bridges] == [0, 1, 2, 3]
    assert isinstance(system.rebalancer, Rebalancer)


def test_rebalance_knob_accepts_config_and_dict_and_rejects_junk():
    config = RebalanceConfig(threshold=9.0)
    assert make_system(rebalance=config).rebalancer.config.threshold == 9.0
    assert make_system(
        rebalance={"cooldown": 1.0}
    ).rebalancer.config.cooldown == 1.0
    with pytest.raises(ValueError, match="rebalance="):
        make_system(rebalance="aggressive")


def test_rebalancer_refuses_a_modulo_fabric():
    system = BridgeSystem(2, seed=0, bridge_server_count=2)
    with pytest.raises(ValueError, match="consistent-hash"):
        Rebalancer(system, HeatMap(2))


# ---------------------------------------------------------------------------
# Decision gates (no files needed — the gates fire before planning)
# ---------------------------------------------------------------------------


def sweep_once(system):
    return system.run(system.rebalancer.sweep(), name="sweep")


def test_idle_fabric_is_left_alone():
    system = make_system()
    record = sweep_once(system)
    assert record.action == "idle"
    assert system.fabric.ring.dropped == frozenset()


def test_balanced_fabric_is_left_alone():
    system = make_system()
    for partition in range(4):
        system.heat.observe(partition, None, busy=0.1, now=0.0)
    record = sweep_once(system)
    assert record.action == "balanced"
    assert record.imbalance == pytest.approx(1.0)


def test_cooldown_suppresses_back_to_back_actions():
    system = make_system()
    system.heat.observe(0, "hot", busy=1.0, now=0.0)
    system.rebalancer._last_action = 0.0
    record = sweep_once(system)
    assert record.action == "cooldown"


def test_skew_without_a_movable_namespace_is_no_candidate():
    # Heat on names that own no files: every trial plan is empty, so
    # the policy must decline rather than flip to an identical ring.
    system = make_system()
    system.heat.observe(0, "ghost", busy=1.0, now=0.0)
    record = sweep_once(system)
    assert record.action == "no-candidate"
    assert system.fabric.ring.dropped == frozenset()


# ---------------------------------------------------------------------------
# The acting path, against a real namespace
# ---------------------------------------------------------------------------


def populate(system, count=48):
    client = system.partitioned_client()

    def body():
        for i in range(count):
            yield from client.create(f"rb-{i:03d}")

    system.run(body(), name="populate")
    return [f"rb-{i:03d}" for i in range(count)]


def paint_skew(system, names):
    """Make one partition hot through many medium-heat names, so that
    shedding any of its arcs strictly lowers the predicted peak."""
    ring = system.fabric.ring
    loads = [0] * ring.partitions
    for name in names:
        loads[ring.partition_of(name)] += 1
    hot = loads.index(max(loads))
    now = system.sim.now
    for name in names:
        busy = 0.08 if ring.partition_of(name) == hot else 0.004
        system.heat.observe(ring.partition_of(name), name, busy, now)
    return hot


def assert_ownership_consistent(system, names):
    for name in names:
        owner = system.fabric.partition_of(name)
        holders = [
            index for index, bridge in enumerate(system.bridges)
            if bridge.directory.exists(name)
        ]
        assert holders == [owner], (name, holders, owner)


def test_watch_only_records_but_never_acts():
    system = make_system(rebalance=RebalanceConfig(watch_only=True))
    names = populate(system)
    paint_skew(system, names)
    before = system.fabric.ring
    record = sweep_once(system)
    assert record.action == "watch"
    assert record.planned >= 1 and record.shed
    assert record.moved == 0
    assert system.fabric.ring is before
    assert_ownership_consistent(system, names)


def test_acting_sweep_sheds_arcs_and_strands_nothing():
    system = make_system()
    names = populate(system)
    hot = paint_skew(system, names)
    rates_before = system.heat.partition_rates(system.sim.now)
    record = sweep_once(system)
    assert record.action == "rebalance", record
    assert record.moved >= 1
    ring = system.fabric.ring
    assert ring.dropped, "an acting sweep drops at least one arc"
    assert all(partition == hot for partition, _vnode in ring.dropped)
    # Every moved name is where the live ring says it is; nothing lost,
    # nothing duplicated.
    assert_ownership_consistent(system, names)
    # The shed provably lowered the modeled peak: re-painting the same
    # per-name heat onto the new ring spreads it flatter.
    loads = [0.0] * ring.partitions
    now = system.sim.now
    for name, busy, _count in system.heat.name_heat(now):
        loads[ring.partition_of(name)] += busy
    assert max(loads) < max(rates_before)


def test_run_is_duration_bounded_and_drains():
    system = make_system(rebalance=RebalanceConfig(interval=1.0))
    records = system.run(system.rebalancer.run(3.5), name="loop")
    assert len(records) == 3  # sweeps at t=1, 2, 3; then the loop exits
    assert system.sim.now <= 3.5
    assert [record.action for record in records] == ["idle"] * 3


def test_sweep_records_export_as_plain_dicts():
    system = make_system()
    record = sweep_once(system)
    data = record.to_dict()
    assert data["action"] == "idle"
    assert isinstance(data["busy_rates"], list)


# ---------------------------------------------------------------------------
# Installing the subsystem must not perturb the simulation
# ---------------------------------------------------------------------------


def test_heat_seam_preserves_the_event_sequence():
    """Same seed, same workload, heat map installed vs not: identical
    event count and identical final clock — the accounting is a pure
    read-side seam, exactly like S19 observability."""

    def drive(system):
        names = populate(system, count=12)
        return names, system.sim.events_executed, system.sim.now

    _names, bare_events, bare_now = drive(
        BridgeSystem(4, seed=3, disk_latency=FixedLatency(0.0005),
                     bridge_server_count=4, elastic=True)
    )
    system = make_system(seed=3)
    _names, events, now = drive(system)
    assert system.heat.recorded > 0
    assert (events, now) == (bare_events, bare_now)
