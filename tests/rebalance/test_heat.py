"""S24 heat-map invariants: attribution, windowed decay, determinism.

The control plane's decisions are only as good as its accounting, so
these tests pin the write side (who gets charged for what) and the read
side (what decays, what survives, what order the hot list comes out in)
without spinning up a simulator — the map is pure arithmetic over
``(partition, name, busy, now)`` observations.
"""

import pytest

from repro.rebalance import CONTROL_METHODS, HeatMap


class FakeRequest:
    def __init__(self, method, **args):
        self.method = method
        self.args = args


def test_record_attributes_partition_and_name():
    heat = HeatMap(2, window=2.0, buckets=4)
    heat.record(1, FakeRequest("read_block", name="f"), busy=0.4, now=0.1)
    assert heat.partition_rates(0.1) == [0.0, pytest.approx(0.2)]
    assert heat.name_heat(0.1) == [("f", pytest.approx(0.2),
                                    pytest.approx(0.5))]


def test_control_traffic_is_not_charged():
    heat = HeatMap(2)
    for method in sorted(CONTROL_METHODS):
        heat.record(0, FakeRequest(method, name="f"), busy=1.0, now=0.1)
    assert heat.partition_rates(0.1) == [0.0, 0.0]
    assert heat.name_heat(0.1) == []
    assert heat.recorded == 0


def test_batched_busy_splits_evenly_across_names():
    heat = HeatMap(1, window=2.0)
    request = FakeRequest("create_many", names=["a", "b", "c", "d"])
    heat.record(0, request, busy=0.8, now=0.1)
    rates = dict((n, busy) for n, busy, _c in heat.name_heat(0.1))
    assert rates == {n: pytest.approx(0.1) for n in "abcd"}
    # The partition got the whole 0.8 once, not 4x.
    assert heat.partition_rates(0.1)[0] == pytest.approx(0.4)


def test_nameless_requests_count_against_the_partition_only():
    heat = HeatMap(1)
    heat.record(0, FakeRequest("get_info"), busy=0.2, now=0.1)
    assert heat.partition_rates(0.1)[0] > 0
    assert heat.name_heat(0.1) == []


def test_old_load_decays_out_of_the_window():
    heat = HeatMap(1, window=2.0, buckets=4)
    heat.observe(0, "f", busy=1.0, now=0.0)
    assert heat.partition_rates(0.0)[0] == pytest.approx(0.5)
    # Still (partially) visible inside the window...
    assert heat.partition_rates(1.9)[0] == pytest.approx(0.5)
    # ...gone once the window has slid past it.
    assert heat.partition_rates(4.0)[0] == 0.0
    assert heat.name_heat(4.0) == []


def test_imbalance_is_peak_over_mean_and_zero_when_idle():
    heat = HeatMap(4)
    assert heat.imbalance(0.0) == 0.0
    for partition, busy in enumerate((0.4, 0.1, 0.1, 0.1)):
        heat.observe(partition, None, busy=busy, now=0.1)
    assert heat.imbalance(0.1) == pytest.approx(0.4 / 0.175)
    # ``active`` restricts the denominator (post-shrink retired slots).
    assert heat.imbalance(0.1, active=1) == pytest.approx(1.0)


def test_name_heat_order_is_deterministic_under_ties():
    heat = HeatMap(1)
    for name in ("zz", "aa", "mm"):
        heat.observe(0, name, busy=0.3, now=0.1)
    assert [n for n, _b, _c in heat.name_heat(0.1)] == ["aa", "mm", "zz"]
    assert [n for n, _b, _c in heat.name_heat(0.1, top=2)] == ["aa", "mm"]


def test_name_cap_prunes_stale_names_not_hot_ones():
    heat = HeatMap(1, window=2.0, buckets=4, max_names=4)
    for i in range(4):
        heat.observe(0, f"old{i}", busy=0.1, now=0.0)
    # Far in the future the old names' buckets have all expired; new
    # arrivals displace them instead of growing the table.
    heat.observe(0, "hot", busy=0.5, now=10.0)
    tracked = {name for name, _b, _c in heat.name_heat(10.0)}
    assert tracked == {"hot"}
    assert len(heat._names) <= 4


def test_publish_refreshes_the_gauge_family():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    heat = HeatMap(2)
    heat.observe(0, "f", busy=0.6, now=0.1)
    heat.publish(registry, 0.1)
    assert registry.gauge("rebalance.heat.partition0").value == \
        pytest.approx(0.3)
    assert registry.gauge("rebalance.heat.partition1").value == 0.0
    assert registry.gauge("rebalance.heat.imbalance").value == \
        pytest.approx(2.0)
    assert registry.gauge("rebalance.heat.names_tracked").value == 1.0


def test_snapshot_is_plain_data():
    heat = HeatMap(2)
    heat.observe(1, "f", busy=0.2, now=0.1)
    snap = heat.snapshot(0.1)
    assert snap["imbalance"] == pytest.approx(2.0)
    assert snap["hot_names"][0]["name"] == "f"
    assert snap["recorded"] == 1


def test_heatmap_validates_parameters():
    with pytest.raises(ValueError):
        HeatMap(0)
    with pytest.raises(ValueError):
        HeatMap(1, window=0.0)
    with pytest.raises(ValueError):
        HeatMap(1, buckets=0)
