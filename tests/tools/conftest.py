"""Fixtures for tool tests."""

import pytest

from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency


def make_system(p, fast=True, seed=41, **kwargs):
    latency = FixedLatency(0.0005) if fast else FixedLatency(0.015)
    return BridgeSystem(p, seed=seed, disk_latency=latency, **kwargs)


@pytest.fixture
def system():
    return make_system(4)
