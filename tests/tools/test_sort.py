"""Tests for the merge-sort tool: records, local sort, the Figure-4 token
merge, and the full two-phase tool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tools.sort import (
    SortTool,
    expected_merge_passes,
    is_sorted,
    key_of,
    make_record,
    payload_of,
)
from repro.workloads import (
    build_record_file,
    few_distinct_keys,
    read_file,
    reversed_keys,
    sorted_keys,
    uniform_keys,
)
from tests.tools.conftest import make_system


def run_sort(system, keys, source="unsorted", dest="sorted", **tool_kwargs):
    build_record_file(system, source, keys)
    tool = SortTool(
        system.client_node, system.bridge.port, system.config, **tool_kwargs
    )

    def body():
        return (yield from tool.run(source, dest))

    result = system.run(body(), name="sorttool")
    output = read_file(system, dest)
    return result, output


def assert_sorted_permutation(keys, output):
    assert len(output) == len(keys)
    out_keys = [key_of(record) for record in output]
    assert out_keys == sorted(keys)


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


def test_record_roundtrip():
    record = make_record(1234, b"payload")
    assert len(record) == 960
    assert key_of(record) == 1234
    assert payload_of(record) == b"payload"


def test_record_key_bounds():
    with pytest.raises(ValueError):
        make_record(-1)
    with pytest.raises(ValueError):
        make_record(2**64)
    make_record(2**64 - 1)  # max is fine


def test_record_oversize_payload():
    with pytest.raises(ValueError):
        make_record(0, b"x" * 953)


def test_is_sorted_helper():
    assert is_sorted([make_record(1), make_record(1), make_record(2)])
    assert not is_sorted([make_record(2), make_record(1)])
    assert is_sorted([])


def test_expected_merge_passes():
    assert expected_merge_passes(100, 512) == 0
    assert expected_merge_passes(1024, 512) == 1
    assert expected_merge_passes(2048, 512) == 2
    assert expected_merge_passes(513, 512) == 1


# ---------------------------------------------------------------------------
# Full tool, various widths and workloads
# ---------------------------------------------------------------------------


def test_sort_p2_uniform():
    system = make_system(2)
    keys = uniform_keys(30, seed=1)
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    assert result.records == 30
    assert result.width == 2
    assert len(result.passes) == 1


def test_sort_p4_uniform():
    system = make_system(4)
    keys = uniform_keys(50, seed=2)
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    assert len(result.passes) == 2  # log2(4)


def test_sort_p8_uniform():
    system = make_system(8)
    keys = uniform_keys(64, seed=3)
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    assert len(result.passes) == 3


def test_sort_p1_local_only():
    system = make_system(1)
    keys = uniform_keys(20, seed=4)
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    assert result.merge_time == 0.0
    assert result.passes == []


def test_sort_p3_odd_width_with_byes():
    system = make_system(3)
    keys = uniform_keys(31, seed=5)
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    assert len(result.passes) == 2  # (1,1)+bye then (2,1)


def test_sort_already_sorted_input():
    system = make_system(4)
    keys = sorted_keys(40, seed=6)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_reverse_sorted_input():
    system = make_system(4)
    keys = reversed_keys(40, seed=7)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_duplicate_keys():
    system = make_system(4)
    keys = few_distinct_keys(48, distinct=3, seed=8)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_all_equal_keys():
    system = make_system(4)
    keys = [99] * 24
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_single_record():
    system = make_system(4)
    keys = [7]
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_empty_file():
    system = make_system(4)
    result, output = run_sort(system, [])
    assert output == []
    assert result.records == 0


def test_sort_fewer_records_than_width():
    system = make_system(8)
    keys = uniform_keys(3, seed=9)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_ragged_distribution():
    """Record count not a multiple of p: constituents differ in size."""
    system = make_system(4)
    keys = uniform_keys(29, seed=10)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_intermediate_files_cleaned_up():
    system = make_system(4)
    keys = uniform_keys(32, seed=11)
    run_sort(system, keys)

    def body():
        client = system.naive_client()
        info = yield from client.get_info()
        return info

    system.run(body())
    assert sorted(system.bridge.directory.names()) == ["sorted", "unsorted"]
    # scratch EFS files must be gone too: each LFS holds exactly the two
    # bridge files' constituents
    def list_all():
        listings = []
        for slot in range(system.width):
            efs = system.efs_client(slot, node=system.client_node)
            listings.append((yield from efs.list_files()))
        return listings

    listings = system.run(list_all())
    for listing in listings:
        assert len(listing) == 2


def test_sort_output_interleaved_across_all_nodes():
    system = make_system(4)
    keys = uniform_keys(32, seed=12)
    run_sort(system, keys)

    def body():
        client = system.naive_client()
        return (yield from client.open("sorted"))

    result = system.run(body())
    assert result.width == 4
    assert result.start == 0
    assert [c.size_blocks for c in result.constituents] == [8, 8, 8, 8]


def test_sort_with_multiple_local_runs():
    """Force run formation + local merge passes with a small buffer."""
    from repro.config import DEFAULT_CONFIG

    config = DEFAULT_CONFIG.with_changes(sort_buffer_records=4)
    system = make_system(2, config=config)
    keys = uniform_keys(40, seed=13)  # 20 records/node, c=4 -> 5 runs
    result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)
    for report in result.local_reports:
        assert report.runs == 5
        assert report.merge_passes == 3  # ceil(log2(5))


def test_sort_without_hints_still_correct_but_slower():
    system_hints = make_system(2, seed=50)
    keys = uniform_keys(24, seed=14)
    result_hints, output_hints = run_sort(system_hints, keys)

    system_nohints = make_system(2, seed=50)
    result_nohints, output_nohints = run_sort(
        system_nohints, keys, use_hints=False
    )
    assert_sorted_permutation(keys, output_hints)
    assert_sorted_permutation(keys, output_nohints)
    assert result_nohints.local_sort_time >= result_hints.local_sort_time


def test_sort_phase_times_sum_to_total():
    system = make_system(4)
    keys = uniform_keys(32, seed=15)
    result, _output = run_sort(system, keys)
    overhead = result.total_time - (result.local_sort_time + result.merge_time)
    assert overhead >= 0
    assert overhead < result.total_time * 0.1


def test_sort_merge_stats_record_counts():
    system = make_system(4)
    keys = uniform_keys(32, seed=16)
    result, _output = run_sort(system, keys)
    # pass 1: two merges of 16; pass 2: one merge of 32
    assert [sorted(m.records for m in p.merges) for p in result.passes] == [
        [16, 16],
        [32],
    ]


@settings(max_examples=10, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2**32), min_size=0, max_size=40),
    width=st.sampled_from([2, 3, 4]),
)
def test_sort_property_random_inputs(keys, width):
    """The tool output is always the sorted permutation of the input."""
    system = make_system(width, seed=abs(hash(tuple(keys))) % 1000)
    _result, output = run_sort(system, keys)
    assert_sorted_permutation(keys, output)


def test_sort_payloads_travel_with_keys():
    system = make_system(2)
    keys = [5, 3, 9, 1]
    build_record_file(system, "pl", keys, payload_bytes=8, seed=99)
    original = {key_of(r): payload_of(r) for r in read_file(system, "pl")}
    tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("pl", "pl-sorted"))

    system.run(body())
    output = read_file(system, "pl-sorted")
    for record in output:
        assert payload_of(record) == original[key_of(record)]
