"""Protocol-level tests for the Figure-4 token-passing merge: driving
PairMerge directly over hand-built constituent layouts."""

import pytest

from repro.core import BridgeClient
from repro.errors import SortProtocolError
from repro.tools.sort import PairMerge, key_of, make_record
from repro.tools.sort.merge import _expected_for_slot
from repro.core.info import ConstituentInfo
from tests.tools.conftest import make_system


def build_sorted(system, name, keys, slots):
    """A pre-sorted file on the given LFS slots (width = len(slots))."""
    client = system.naive_client()

    def body():
        yield from client.create(name, node_slots=slots, start=0)
        for key in keys:
            yield from client.seq_write(name, make_record(key))
        return (yield from client.open(name))

    return system.run(body()), client


def run_merge(system, left_keys, right_keys, left_slots, right_slots):
    left, client = build_sorted(system, "L", sorted(left_keys), left_slots)
    right, _ = build_sorted(system, "R", sorted(right_keys), right_slots)
    out_slots = left_slots + right_slots

    def body():
        yield from client.create("OUT", node_slots=out_slots, start=0)
        out = yield from client.open("OUT")
        merge = PairMerge(system.client_node, system.config)
        stats = yield from merge.run(
            left.constituents, right.constituents, out.constituents,
            left.total_blocks + right.total_blocks,
        )
        chunks = yield from client.read_all("OUT")
        return stats, [key_of(c) for c in chunks]

    return system.run(body())


def test_merge_basic_two_singles():
    system = make_system(2)
    stats, keys = run_merge(system, [1, 3, 5], [2, 4, 6], [0], [1])
    assert keys == [1, 2, 3, 4, 5, 6]
    assert stats.records == 6
    assert stats.token_hops >= 6  # at least one hop per record


def test_merge_left_empty():
    system = make_system(2)
    _stats, keys = run_merge(system, [], [7, 8, 9], [0], [1])
    assert keys == [7, 8, 9]


def test_merge_right_empty():
    system = make_system(2)
    _stats, keys = run_merge(system, [4, 5], [], [0], [1])
    assert keys == [4, 5]


def test_merge_both_empty():
    system = make_system(2)
    stats, keys = run_merge(system, [], [], [0], [1])
    assert keys == []
    assert stats.records == 0


def test_merge_all_left_smaller():
    system = make_system(2)
    _stats, keys = run_merge(system, [1, 2, 3], [10, 11], [0], [1])
    assert keys == [1, 2, 3, 10, 11]


def test_merge_all_duplicates():
    system = make_system(2)
    _stats, keys = run_merge(system, [5, 5, 5], [5, 5], [0], [1])
    assert keys == [5] * 5


def test_merge_interleaved_inputs_asymmetric_width():
    """Merging a width-2 file with a width-1 file into width 3 (the bye
    path of odd processor counts)."""
    system = make_system(3)
    _stats, keys = run_merge(
        system, [1, 4, 7, 10], [2, 5], [0, 1], [2]
    )
    assert keys == [1, 2, 4, 5, 7, 10]


def test_merge_wide_symmetric():
    system = make_system(4)
    import random

    rng = random.Random(5)
    left = sorted(rng.randrange(1000) for _ in range(11))
    right = sorted(rng.randrange(1000) for _ in range(13))
    _stats, keys = run_merge(system, left, right, [0, 1], [2, 3])
    assert keys == sorted(left + right)


def test_merge_rejects_nonzero_start_destination():
    system = make_system(2)
    left, client = build_sorted(system, "L", [1], [0])
    right, _ = build_sorted(system, "R", [2], [1])

    def body():
        yield from client.create("OUT", node_slots=[0, 1], start=1)
        out = yield from client.open("OUT")
        merge = PairMerge(system.client_node, system.config)
        try:
            yield from merge.run(
                left.constituents, right.constituents, out.constituents, 2
            )
        except SortProtocolError:
            return "caught"

    assert system.run(body()) == "caught"


def test_expected_for_slot_arithmetic():
    def constituent(slot, column):
        return ConstituentInfo(
            slot=slot, column=column, node_index=slot, lfs_port=None,
            efs_file_number=0,
        )

    # 10 records over width 4: columns 0,1 get 3; columns 2,3 get 2
    assert _expected_for_slot(constituent(0, 0), 4, 10) == 3
    assert _expected_for_slot(constituent(1, 1), 4, 10) == 3
    assert _expected_for_slot(constituent(2, 2), 4, 10) == 2
    assert _expected_for_slot(constituent(3, 3), 4, 10) == 2


def test_token_hops_bounded():
    """'The token is never passed twice in a row without writing':
    hops are bounded by ~2 per record plus startup/termination."""
    system = make_system(2)
    stats, _keys = run_merge(
        system, list(range(0, 40, 2)), list(range(1, 40, 2)), [0], [1]
    )
    assert stats.token_hops <= 2 * stats.records + 4
