"""Tests for the copy tool and the one-to-one filter tools."""

import pytest

from repro.tools import (
    CopyTool,
    EncryptTool,
    GrepTool,
    LineLexTool,
    TranslateTool,
    WordCountTool,
    rot13_table,
)
from repro.workloads import build_file, pattern_chunks, read_file, text_chunks
from tests.tools.conftest import make_system


def run_copy(system, tool_cls=CopyTool, blocks=13, source="src", dest="dst",
             tool_kwargs=None, chunks=None):
    chunks = chunks if chunks is not None else pattern_chunks(blocks)
    build_file(system, source, chunks)
    tool = tool_cls(
        system.client_node, system.bridge.port, system.config,
        **(tool_kwargs or {})
    )

    def body():
        return (yield from tool.run(source, dest))

    result = system.run(body(), name="copytool")
    return chunks, result


# ---------------------------------------------------------------------------
# Copy
# ---------------------------------------------------------------------------


def test_copy_preserves_contents_and_order(system):
    chunks, result = run_copy(system, blocks=13)
    copied = read_file(system, "dst")
    assert len(copied) == 13
    for original, copy in zip(chunks, copied):
        assert copy.startswith(original)
    assert result.total_blocks == 13


def test_copy_empty_file(system):
    chunks, result = run_copy(system, blocks=0)
    assert result.total_blocks == 0
    assert read_file(system, "dst") == []


def test_copy_single_block(system):
    chunks, result = run_copy(system, blocks=1)
    assert read_file(system, "dst")[0].startswith(chunks[0])


def test_copy_worker_reports(system):
    _chunks, result = run_copy(system, blocks=10)
    assert len(result.workers) == 4
    assert sorted(w.blocks for w in result.workers) == [2, 2, 3, 3]
    assert {w.node_index for w in result.workers} == {0, 1, 2, 3}
    assert result.blocks_per_second > 0


def test_copy_dest_has_same_interleaving(system):
    run_copy(system, blocks=9)

    def body():
        client = system.naive_client()
        src = yield from client.open("src")
        dst = yield from client.open("dst")
        return src, dst

    src, dst = system.run(body())
    assert dst.width == src.width
    assert dst.start == src.start
    assert [c.size_blocks for c in dst.constituents] == [
        c.size_blocks for c in src.constituents
    ]


def test_copy_nearly_linear_speedup():
    """Section 5.1: 'The copy tool displays nearly linear speedup as
    processors are added.'"""
    times = {}
    for p in (2, 4, 8):
        system = make_system(p, fast=False)
        _chunks, result = run_copy(system, blocks=512)
        times[p] = result.elapsed
    assert times[2] / times[4] > 1.7
    assert times[4] / times[8] > 1.6


def test_copy_faster_than_naive_readwrite():
    """The tool must beat doing the same copy through the central server."""
    system = make_system(4, fast=False)
    chunks = pattern_chunks(32)
    build_file(system, "src", chunks)

    client = system.naive_client()

    def naive_copy():
        yield from client.create("naive-dst")
        yield from client.open("src")
        start = system.sim.now
        while True:
            block, data = yield from client.seq_read("src")
            if block is None:
                break
            yield from client.seq_write("naive-dst", data)
        return system.sim.now - start

    naive_time = system.run(naive_copy())

    tool = CopyTool(system.client_node, system.bridge.port, system.config)

    def tool_copy():
        return (yield from tool.run("src", "tool-dst"))

    result = system.run(tool_copy())
    assert result.elapsed < naive_time


def test_copy_tree_vs_sequential_spawn_same_result(system):
    chunks, _result = run_copy(system, blocks=8, dest="tree-dst")
    tool = CopyTool(
        system.client_node, system.bridge.port, system.config,
        use_tree_spawn=False,
    )

    def body():
        return (yield from tool.run("src", "seq-dst"))

    system.run(body())
    assert read_file(system, "tree-dst") == read_file(system, "seq-dst")


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------


def test_translate_tool_applies_table(system):
    chunks = [b"Hello Bridge" + bytes(4)] * 6
    _chunks, _result = run_copy(
        system, tool_cls=TranslateTool, chunks=chunks,
        tool_kwargs={"table": rot13_table()},
    )
    out = read_file(system, "dst")
    assert out[0].startswith(b"Uryyb Oevqtr")


def test_translate_rejects_bad_table(system):
    with pytest.raises(ValueError):
        TranslateTool(
            system.client_node, system.bridge.port, system.config, table=b"xy"
        )


def test_encrypt_tool_roundtrip(system):
    chunks = pattern_chunks(9)
    build_file(system, "plain", chunks)
    key = b"secret-key"

    def run_tool(src, dst):
        tool = EncryptTool(
            system.client_node, system.bridge.port, system.config, key=key
        )

        def body():
            return (yield from tool.run(src, dst))

        return system.run(body())

    run_tool("plain", "cipher")
    ciphertext = read_file(system, "cipher")
    assert not ciphertext[0].startswith(chunks[0])  # actually encrypted
    run_tool("cipher", "decrypted")
    plaintext = read_file(system, "decrypted")
    for original, roundtripped in zip(chunks, plaintext):
        assert roundtripped.startswith(original)


def test_encrypt_rejects_empty_key(system):
    with pytest.raises(ValueError):
        EncryptTool(system.client_node, system.bridge.port, system.config, key=b"")


def test_lex_tool_lowercases_lines_and_counts_tokens(system):
    line = (b"Bridge TOOLS Are Fast " * 4)[:79] + b"\n"
    block = (line * 12)[:960]
    chunks = [block] * 4
    _chunks, result = run_copy(
        system, tool_cls=LineLexTool, chunks=chunks,
        tool_kwargs={"line_length": 80},
    )
    out = read_file(system, "dst")
    assert b"bridge tools are fast" in out[0]
    combined = {}
    for worker in result.workers:
        for token, count in (worker.summary or {}).items():
            combined[token] = combined.get(token, 0) + count
    assert combined[b"bridge"] == 4 * 12 * 4


def test_lex_rejects_bad_line_length(system):
    with pytest.raises(ValueError):
        LineLexTool(
            system.client_node, system.bridge.port, system.config, line_length=0
        )


def test_filters_within_constant_factor_of_copy():
    """Section 5.1: filter programs 'should run within a constant factor
    of the copy tool's time'."""
    system = make_system(4, fast=False)
    chunks = pattern_chunks(40)
    build_file(system, "src", chunks)

    def run_tool(tool, dst):
        def body():
            return (yield from tool.run("src", dst))

        return system.run(body()).elapsed

    plain = run_tool(
        CopyTool(system.client_node, system.bridge.port, system.config), "c"
    )
    translated = run_tool(
        TranslateTool(
            system.client_node, system.bridge.port, system.config,
            table=rot13_table(),
        ),
        "t",
    )
    encrypted = run_tool(
        EncryptTool(
            system.client_node, system.bridge.port, system.config, key=b"k3y"
        ),
        "e",
    )
    assert plain <= translated <= plain * 1.5
    assert plain <= encrypted <= plain * 1.5


# ---------------------------------------------------------------------------
# Grep
# ---------------------------------------------------------------------------


def test_grep_finds_planted_needles(system):
    chunks = text_chunks(24, seed=3, needle=b"NEEDLE", needle_every=4)
    build_file(system, "hay", chunks)
    tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("hay", b"NEEDLE"))

    result = system.run(body())
    assert result.count == 6
    assert sorted(m.global_block for m in result.matches) == [0, 4, 8, 12, 16, 20]
    assert result.blocks_scanned == 24


def test_grep_no_matches(system):
    build_file(system, "hay2", text_chunks(8, seed=4))
    tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("hay2", b"ZZZZQQ"))

    result = system.run(body())
    assert result.count == 0


def test_grep_multiple_matches_per_block(system):
    block = (b"spot the spot in this spot " * 30)[:960]
    build_file(system, "hay3", [block])
    tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("hay3", b"spot"))

    result = system.run(body())
    assert result.count == block.count(b"spot")
    offsets = [m.offset for m in result.matches]
    assert offsets == sorted(offsets)


def test_grep_rejects_empty_pattern(system):
    tool = GrepTool(system.client_node, system.bridge.port, system.config)
    with pytest.raises(ValueError):
        next(tool.run("hay", b""))


def test_grep_matches_reported_in_global_order(system):
    chunks = text_chunks(16, seed=5, needle=b"XMARKX", needle_every=1)
    build_file(system, "hay4", chunks)
    tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("hay4", b"XMARKX"))

    result = system.run(body())
    blocks = [m.global_block for m in result.matches]
    assert blocks == sorted(blocks)
    assert len(set(blocks)) == 16


# ---------------------------------------------------------------------------
# Word count
# ---------------------------------------------------------------------------


def test_wordcount_totals(system):
    block = b"one two three\nfour five\n".ljust(960, b"\x00")
    build_file(system, "counted", [block] * 8)
    tool = WordCountTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("counted"))

    result = system.run(body())
    assert result.blocks == 8
    assert result.words == 5 * 8
    assert result.lines == 2 * 8
    assert result.data_bytes == len(b"one two three\nfour five\n") * 8


def test_wordcount_empty_file(system):
    build_file(system, "empty", [])
    tool = WordCountTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("empty"))

    result = system.run(body())
    assert result.blocks == 0
    assert result.words == 0
