"""Unit tests driving LocalSorter directly against one LFS."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.efs import EFSClient, EFSServer
from repro.efs.fsck import check_efs
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import DiskParameters, FixedLatency, SimulatedDisk
from repro.tools.sort import LocalSorter, key_of, make_record


def make_lfs(buffer_records=8):
    config = DEFAULT_CONFIG.with_changes(sort_buffer_records=buffer_records)
    sim = Simulator(seed=131)
    machine = Machine(sim, 1, config=config)
    node = machine.node(0)
    disk = SimulatedDisk(
        sim, DiskParameters(name="d", capacity_blocks=4096), FixedLatency(1e-4)
    )
    server = EFSServer(node, disk, config)
    client = EFSClient(node, server.port)
    return sim, node, server, client, config


def run_local_sort(keys, buffer_records=8, use_hints=True):
    sim, node, server, client, config = make_lfs(buffer_records)

    def body():
        yield from client.create(1)
        for key in keys:
            yield from client.append(1, make_record(key))
        yield from client.create(2)
        sorter = LocalSorter(node, server.port, config,
                             scratch_base=10**9, use_hints=use_hints)
        report = yield from sorter.sort(1, 2, slot=0)
        chunks = yield from client.read_file(2)
        listing = yield from client.list_files()
        return report, [key_of(c) for c in chunks], listing

    report, out_keys, listing = sim.run_process(body())
    fsck = check_efs(server)
    assert fsck.clean, fsck.errors
    return report, out_keys, listing


def test_single_run_in_core_only():
    keys = [9, 2, 7, 4]
    report, out, listing = run_local_sort(keys, buffer_records=8)
    assert out == sorted(keys)
    assert report.runs == 1
    assert report.merge_passes == 0
    assert listing == [1, 2]  # no scratch left behind


def test_two_runs_one_pass():
    keys = list(range(16, 0, -1))
    report, out, _ = run_local_sort(keys, buffer_records=8)
    assert out == sorted(keys)
    assert report.runs == 2
    assert report.merge_passes == 1


def test_five_runs_three_passes_with_bye():
    keys = [(i * 37) % 101 for i in range(40)]
    report, out, listing = run_local_sort(keys, buffer_records=8)
    assert out == sorted(keys)
    assert report.runs == 5
    assert report.merge_passes == 3  # ceil(log2(5))
    assert listing == [1, 2]


def test_empty_source():
    report, out, _ = run_local_sort([], buffer_records=8)
    assert out == []
    assert report.records == 0
    assert report.runs == 0


def test_exactly_buffer_sized():
    keys = [5, 1, 3, 2, 4, 0, 7, 6]
    report, out, _ = run_local_sort(keys, buffer_records=8)
    assert out == sorted(keys)
    assert report.runs == 1


def test_duplicates_stable_count():
    keys = [3, 1, 3, 1, 3, 1, 3, 1, 3, 1]
    _report, out, _ = run_local_sort(keys, buffer_records=4)
    assert out == sorted(keys)


def test_report_carries_slot_and_timing():
    report, _out, _ = run_local_sort([4, 2, 6], buffer_records=8)
    assert report.slot == 0
    assert report.elapsed > 0
    assert report.records == 3


def test_hints_off_same_result():
    keys = [(i * 13) % 64 for i in range(24)]
    _r1, out_hints, _ = run_local_sort(keys, buffer_records=8, use_hints=True)
    _r2, out_plain, _ = run_local_sort(keys, buffer_records=8, use_hints=False)
    assert out_hints == out_plain == sorted(keys)


def test_expected_merge_passes_matches_reports():
    from repro.tools.sort import expected_merge_passes

    for count, buffer_records in ((40, 8), (16, 8), (7, 8), (65, 8)):
        keys = list(range(count, 0, -1))
        report, out, _ = run_local_sort(keys, buffer_records=buffer_records)
        assert out == sorted(keys)
        assert report.merge_passes == expected_merge_passes(count, buffer_records)
