"""The S23 parallel-utilities family: pfind / pcp -r / prm -r and the
scratch-file-as-message workload, over deep trees built through the
batched metadata surface.  This file is also the CI tools smoke."""

from repro.config import DEFAULT_CONFIG
from repro.tools import PCopyTool, PFindTool, PRemoveTool
from repro.workloads import (
    build_tree,
    scratch_messages,
    tree_block,
    tree_names,
)

from .conftest import make_system

DEPTH, FANOUT, FILES_PER_DIR, PAYLOAD = 3, 2, 2, 2


def make_tree_system(**kwargs):
    system = make_system(4, bridge_server_count=4, **kwargs)
    client = system.partitioned_client()
    names = system.run(build_tree(
        client, root="tree", depth=DEPTH, fanout=FANOUT,
        files_per_dir=FILES_PER_DIR, payload_blocks=PAYLOAD,
    ))
    return system, client, names


def tool(cls, system):
    return cls(system.client_node, system.fabric, DEFAULT_CONFIG)


# ---------------------------------------------------------------------------
# The tree namer
# ---------------------------------------------------------------------------


def test_tree_names_shape():
    names = tree_names("r", depth=3, fanout=2, files_per_dir=2)
    # files_per_dir * (fanout^depth - 1) / (fanout - 1)
    assert len(names) == 2 * (2 ** 3 - 1)
    assert len(set(names)) == len(names)
    assert all(name.startswith("r/") for name in names)
    # every level is populated
    assert "r/f0" in names and "r/d1/f1" in names and "r/d0/d1/f0" in names


def test_tree_names_validates_arguments():
    import pytest

    with pytest.raises(ValueError):
        tree_names("r", depth=0)
    with pytest.raises(ValueError):
        tree_names("r", fanout=0)


# ---------------------------------------------------------------------------
# pfind
# ---------------------------------------------------------------------------


def test_pfind_lists_and_stats_the_whole_tree():
    system, _, names = make_tree_system()
    result = system.run(tool(PFindTool, system).run("tree/"))
    assert result.names == sorted(names)
    assert len(result.stats) == len(names)
    assert result.missing == []
    assert result.total_blocks == PAYLOAD * len(names)
    # stats arrive in listing order with per-file shapes
    assert [stat.name for stat in result.stats] == result.names


def test_pfind_scopes_by_prefix():
    system, _, names = make_tree_system()
    subtree = [name for name in names if name.startswith("tree/d0/")]
    result = system.run(tool(PFindTool, system).run("tree/d0/"))
    assert result.names == sorted(subtree)


# ---------------------------------------------------------------------------
# pcp -r
# ---------------------------------------------------------------------------


def test_pcp_copies_the_subtree_with_one_worker_per_node():
    system, client, names = make_tree_system()
    result = system.run(tool(PCopyTool, system).run("tree", "copy"))
    assert result.files == len(names)
    assert result.total_blocks == PAYLOAD * len(names)
    # worker count is O(LFS nodes), not O(files)
    assert len(result.workers) <= 4
    assert sum(report.blocks for report in result.workers) == PAYLOAD * len(names)

    # byte-identical content at the mirrored names
    def verify():
        for name in names:
            chunks = yield from client.read_all("copy" + name[len("tree"):])
            for block, chunk in enumerate(chunks):
                expected = tree_block(name, block)
                assert chunk[: len(expected)] == expected, (name, block)

    system.run(verify())


def test_pcp_preserves_placement_shape():
    system, client, names = make_tree_system()
    system.run(tool(PCopyTool, system).run("tree", "copy"))

    def shapes():
        out = []
        for name in names[:4]:
            src = yield from client.open(name)
            dst = yield from client.open("copy" + name[len("tree"):])
            out.append((src, dst))
        return out

    for src, dst in system.run(shapes()):
        assert (src.width, src.start) == (dst.width, dst.start)
        assert ([c.node_index for c in src.constituents]
                == [c.node_index for c in dst.constituents])


def test_pcp_on_an_empty_prefix_is_a_noop():
    system, _, _ = make_tree_system()
    result = system.run(tool(PCopyTool, system).run("nope", "copy"))
    assert (result.files, result.total_blocks, result.workers) == (0, 0, [])


# ---------------------------------------------------------------------------
# prm -r
# ---------------------------------------------------------------------------


def test_prm_removes_the_subtree_and_reports_freed_blocks():
    system, client, names = make_tree_system()
    result = system.run(tool(PRemoveTool, system).run("tree/d0/"))
    doomed = {name for name in names if name.startswith("tree/d0/")}
    assert set(result.removed) == doomed
    assert result.freed_blocks == PAYLOAD * len(doomed)
    assert result.errors == []

    survivors = system.run(tool(PFindTool, system).run("tree/")).names
    assert survivors == sorted(set(names) - doomed)


# ---------------------------------------------------------------------------
# scratch files as messages
# ---------------------------------------------------------------------------


def test_scratch_messages_every_message_read_once_and_deleted():
    system = make_system(4, bridge_server_count=2)
    report = system.run(scratch_messages(
        system, producers=3, consumers=2, messages_per_producer=4,
        payload_blocks=2,
    ))
    assert report.complete, report
    assert report.produced == report.consumed == 12
    assert report.freed_blocks == 2 * 12
    # the mailboxes are empty afterwards
    leftovers = system.run(tool(PFindTool, system).run("mq/"))
    assert leftovers.names == []


def test_scratch_messages_single_partition():
    system = make_system(4)
    report = system.run(scratch_messages(
        system, producers=2, consumers=1, messages_per_producer=3,
    ))
    assert report.complete, report
    assert report.freed_blocks == 6
