"""Edge-case tests: tracer ring buffer, auto-attach, summary/time-weighted
corner cases, Ethernet backlog, and spawn validation."""

import pytest

from repro.machine import EthernetNetwork, Machine
from repro.sim import Simulator, Summary, TimeWeighted, Timeout, Tracer


def test_tracer_auto_attached_by_simulator():
    tracer = Tracer()
    sim = Simulator(trace=tracer)

    def body():
        yield Timeout(1.0)

    sim.spawn(body(), name="auto")
    sim.run()
    exits = tracer.records("exit")
    assert exits
    assert exits[0].time == pytest.approx(1.0)  # stamped with sim clock


def test_tracer_ring_buffer_caps_memory():
    tracer = Tracer(capacity=5)
    sim = Simulator(trace=tracer)

    def body(n):
        yield Timeout(0.001 * n)

    for n in range(20):
        sim.spawn(body(n))
    sim.run()
    assert len(tracer) == 5
    assert tracer.counts["spawn"] == 20  # counters are not capped


def test_tracer_dropped_counter_accounts_for_evictions():
    # Regression: ``counts`` keeps incrementing after the ring starts
    # evicting, so ``counts`` and ``records()`` silently disagreed.  The
    # ``dropped`` counter makes the discrepancy explicit and auditable.
    tracer = Tracer(capacity=5)
    for i in range(8):
        tracer.record("evt", index=i)
    assert len(tracer) == 5
    assert tracer.counts["evt"] == 8
    assert tracer.dropped == 3
    assert sum(tracer.counts.values()) == len(tracer) + tracer.dropped
    # the ring kept the newest records, not the oldest
    assert [r.fields["index"] for r in tracer.records("evt")] == [3, 4, 5, 6, 7]


def test_tracer_dropped_excludes_kind_filtered_records():
    # Filtered-out records are never appended, so they are counted in
    # ``counts`` but not in ``dropped``.
    tracer = Tracer(capacity=2, kinds={"keep"})
    for i in range(4):
        tracer.record("keep", index=i)
        tracer.record("skip", index=i)
    assert tracer.counts["keep"] == 4
    assert tracer.counts["skip"] == 4
    assert len(tracer) == 2
    assert tracer.dropped == 2  # only evicted "keep" records
    filtered = tracer.counts["skip"]
    assert sum(tracer.counts.values()) == len(tracer) + tracer.dropped + filtered


def test_tracer_unbounded_never_drops():
    tracer = Tracer(capacity=None)
    for i in range(1000):
        tracer.record("evt", index=i)
    assert len(tracer) == 1000
    assert tracer.dropped == 0


def test_tracer_clear_keeps_counts():
    tracer = Tracer()
    tracer.record("custom", value=1)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.counts["custom"] == 1


def test_tracer_format_limit():
    tracer = Tracer()
    for i in range(10):
        tracer.record("evt", index=i)
    text = tracer.format(limit=3)
    assert text.count("evt") == 3
    assert "index=9" in text


def test_summary_empty():
    summary = Summary()
    assert summary.mean == 0.0
    assert summary.variance == 0.0
    assert summary.count == 0
    assert "empty" in repr(summary)


def test_summary_single_observation():
    summary = Summary()
    summary.observe(5.0)
    assert summary.mean == 5.0
    assert summary.stddev == 0.0
    assert summary.min == summary.max == 5.0


def test_time_weighted_before_any_time_passes():
    sim = Simulator()
    level = TimeWeighted(sim, initial=3.0)
    assert level.average() == 0.0  # no elapsed time yet
    assert level.current == 3.0


def test_time_weighted_adjust():
    sim = Simulator()
    level = TimeWeighted(sim)

    def body():
        level.adjust(+2)
        yield Timeout(1.0)
        level.adjust(-1)
        yield Timeout(1.0)

    sim.spawn(body())
    sim.run()
    assert level.average() == pytest.approx((2 + 1) / 2)


def test_ethernet_backlog_visible():
    sim = Simulator()
    network = EthernetNetwork(sim, bandwidth_bytes_per_s=100.0,
                              frame_overhead=0.0)
    machine = Machine(sim, 2, network=network)
    port = machine.node(1).port("sink")
    for _ in range(5):
        machine.node(0).send(port, "m", size=100)
    # nothing transmitted yet at t=0 (transmitter hasn't run)
    assert network.backlog >= 4
    sim.run(until=2.5)
    assert network.backlog <= 3


def test_process_repr_states():
    sim = Simulator()

    def body():
        yield Timeout(0.1)

    process = sim.spawn(body(), name="repr-proc")
    assert "running" in repr(process)
    sim.run()
    assert "done" in repr(process)


def test_resource_repr_and_mailbox_repr():
    from repro.sim import Mailbox, Resource

    sim = Simulator()
    resource = Resource(sim, capacity=2, name="arms")
    assert "arms" in repr(resource)
    box = Mailbox(sim, "inbox")
    box.deliver("x")
    assert "inbox" in repr(box)
    assert "queued=1" in repr(box)
