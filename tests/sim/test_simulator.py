"""Tests for the discrete-event kernel: clock, scheduling, processes."""

import pytest

from repro.errors import DeadlockError, InvalidYieldError, ProcessError
from repro.sim import Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield Timeout(1.5)

    sim.spawn(body())
    end = sim.run()
    assert end == pytest.approx(1.5)


def test_zero_timeout_is_allowed():
    sim = Simulator()
    steps = []

    def body():
        steps.append(sim.now)
        yield Timeout(0.0)
        steps.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert steps == [0.0, 0.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    times = []

    def body():
        for _ in range(5):
            yield Timeout(0.25)
            times.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert times == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.25])


def test_two_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def slow():
        yield Timeout(0.3)
        order.append(("slow", sim.now))

    def fast():
        yield Timeout(0.1)
        order.append(("fast", sim.now))

    sim.spawn(slow())
    sim.spawn(fast())
    sim.run()
    assert order == [("fast", pytest.approx(0.1)), ("slow", pytest.approx(0.3))]


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def make(tag):
        def body():
            yield Timeout(1.0)
            order.append(tag)

        return body

    for tag in "abcde":
        sim.spawn(make(tag)())
    sim.run()
    assert order == list("abcde")


def test_run_until_stops_clock():
    sim = Simulator()

    def body():
        yield Timeout(10.0)

    sim.spawn(body())
    end = sim.run(until=3.0)
    assert end == pytest.approx(3.0)
    assert sim.pending_events == 1


def test_run_until_executes_events_at_boundary():
    sim = Simulator()
    fired = []

    def body():
        yield Timeout(3.0)
        fired.append(sim.now)

    sim.spawn(body())
    sim.run(until=3.0)
    assert fired == [pytest.approx(3.0)]


def test_process_result_returned_by_run_process():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        return 42

    assert sim.run_process(body()) == 42


def test_spawn_rejects_non_generator():
    sim = Simulator()

    def not_a_generator():
        return 1

    with pytest.raises(TypeError):
        sim.spawn(not_a_generator)


def test_invalid_yield_raises():
    sim = Simulator()

    def body():
        yield 17

    sim.spawn(body())
    with pytest.raises(InvalidYieldError):
        sim.run()


def test_process_exception_fails_fast_with_name():
    sim = Simulator()

    def body():
        yield Timeout(0.5)
        raise ValueError("boom")

    sim.spawn(body(), name="exploder")
    with pytest.raises(ProcessError) as info:
        sim.run()
    assert info.value.process_name == "exploder"
    assert isinstance(info.value.__cause__, ValueError)


def test_join_returns_result():
    sim = Simulator()

    def worker():
        yield Timeout(2.0)
        return "payload"

    def parent():
        child = sim.spawn(worker(), name="child")
        result = yield child.join()
        return (result, sim.now)

    result, when = sim.run_process(parent())
    assert result == "payload"
    assert when == pytest.approx(2.0)


def test_join_already_finished_process():
    sim = Simulator()

    def worker():
        yield Timeout(0.1)
        return 7

    def parent(child):
        yield Timeout(5.0)
        result = yield child.join()
        return result

    child = sim.spawn(worker())
    assert sim.run_process(parent(child)) == 7


def test_join_all_collects_results_in_order():
    from repro.sim import join_all

    sim = Simulator()

    def worker(delay, value):
        yield Timeout(delay)
        return value

    def parent():
        children = [
            sim.spawn(worker(0.3, "a")),
            sim.spawn(worker(0.1, "b")),
            sim.spawn(worker(0.2, "c")),
        ]
        results = yield join_all(children)
        return results, sim.now

    results, when = sim.run_process(parent())
    assert results == ["a", "b", "c"]
    assert when == pytest.approx(0.3)


def test_call_later_and_call_at():
    sim = Simulator()
    hits = []
    sim.call_later(2.0, hits.append, "later")
    sim.call_at(1.0, hits.append, "at")
    sim.run()
    assert hits == ["at", "later"]
    assert sim.now == pytest.approx(2.0)


def test_call_at_in_past_rejected():
    sim = Simulator()

    def body():
        yield Timeout(5.0)

    sim.spawn(body())
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda _x: None)


def test_call_later_negative_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-0.5, lambda _x: None)


def test_deadlock_detection_flags_blocked_process():
    from repro.sim import Mailbox

    sim = Simulator()
    box = Mailbox(sim)

    def stuck():
        yield box.recv()

    sim.spawn(stuck(), name="stuck")
    with pytest.raises(DeadlockError) as info:
        sim.run(check_deadlock=True)
    assert any("stuck" in str(p) for p in info.value.blocked)


def test_daemon_processes_exempt_from_deadlock_check():
    from repro.sim import Mailbox

    sim = Simulator()
    box = Mailbox(sim)

    def server():
        while True:
            yield box.recv()

    sim.spawn(server(), name="server", daemon=True)
    sim.run(check_deadlock=True)  # must not raise


def test_max_events_caps_execution():
    sim = Simulator()

    def ticker():
        while True:
            yield Timeout(1.0)

    sim.spawn(ticker(), daemon=True)
    sim.run(max_events=10)
    assert sim.events_executed == 10


def test_events_executed_counts_across_runs():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        yield Timeout(1.0)

    sim.spawn(body())
    sim.run(until=1.0)
    first = sim.events_executed
    sim.run()
    assert sim.events_executed > first


def test_live_processes_listing():
    from repro.sim import Mailbox

    sim = Simulator()
    box = Mailbox(sim)

    def server():
        while True:
            yield box.recv()

    def quick():
        yield Timeout(0.1)

    sim.spawn(server(), name="server", daemon=True)
    sim.spawn(quick(), name="quick")
    sim.run()
    live = sim.live_processes()
    assert [p.name for p in live] == ["server"]


def test_nested_spawn_during_run():
    sim = Simulator()
    log = []

    def child(n):
        yield Timeout(0.1)
        log.append(n)

    def parent():
        for n in range(3):
            sim.spawn(child(n))
            yield Timeout(1.0)

    sim.spawn(parent())
    sim.run()
    assert log == [0, 1, 2]


def test_run_process_raises_if_blocked_forever():
    from repro.sim import Mailbox

    sim = Simulator()
    box = Mailbox(sim)

    def stuck():
        yield box.recv()

    with pytest.raises(DeadlockError):
        sim.run_process(stuck())


def test_run_until_advances_clock_on_initially_empty_heap():
    sim = Simulator()
    assert sim.run(until=2.5) == pytest.approx(2.5)
    assert sim.now == pytest.approx(2.5)


def test_run_until_advances_clock_when_heap_drains_early():
    sim = Simulator()

    def body():
        yield Timeout(1.0)

    sim.spawn(body())
    assert sim.run(until=4.0) == pytest.approx(4.0)
    # A second horizon keeps advancing from there (consistent with the
    # non-empty case, where the clock lands exactly on `until`).
    assert sim.run(until=6.0) == pytest.approx(6.0)


def test_run_until_in_past_of_drained_clock_is_noop():
    sim = Simulator()

    def body():
        yield Timeout(3.0)

    sim.spawn(body())
    sim.run()
    assert sim.now == pytest.approx(3.0)
    assert sim.run(until=1.0) == pytest.approx(3.0)


def test_max_events_break_does_not_jump_to_until():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        yield Timeout(1.0)

    sim.spawn(body())
    # One event executed (the spawn step at t=0); work remains pending,
    # so the clock must not teleport to the horizon.
    sim.run(until=10.0, max_events=1)
    assert sim.now < 10.0
    assert sim.pending_events > 0
