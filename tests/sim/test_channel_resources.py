"""Tests for mailboxes, resources, signals, AllOf/AnyOf combinators."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Lock,
    Mailbox,
    Resource,
    Signal,
    Simulator,
    Timeout,
)


# ---------------------------------------------------------------------------
# Mailbox
# ---------------------------------------------------------------------------


def test_mailbox_delivers_queued_message():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver("hello")

    def receiver():
        msg = yield box.recv()
        return msg

    assert sim.run_process(receiver()) == "hello"


def test_mailbox_blocks_until_delivery():
    sim = Simulator()
    box = Mailbox(sim)

    def sender():
        yield Timeout(1.0)
        box.deliver("late")

    def receiver():
        msg = yield box.recv()
        return (msg, sim.now)

    sim.spawn(sender())
    msg, when = sim.run_process(receiver())
    assert msg == "late"
    assert when == pytest.approx(1.0)


def test_mailbox_fifo_ordering():
    sim = Simulator()
    box = Mailbox(sim)
    for i in range(5):
        box.deliver(i)

    def receiver():
        got = []
        for _ in range(5):
            got.append((yield box.recv()))
        return got

    assert sim.run_process(receiver()) == [0, 1, 2, 3, 4]


def test_mailbox_multiple_waiters_fifo():
    sim = Simulator()
    box = Mailbox(sim)
    order = []

    def waiter(tag):
        msg = yield box.recv()
        order.append((tag, msg))

    def feeder():
        yield Timeout(1.0)
        box.deliver("x")
        box.deliver("y")

    sim.spawn(waiter("first"))
    sim.spawn(waiter("second"))
    sim.spawn(feeder())
    sim.run()
    assert order == [("first", "x"), ("second", "y")]


def test_mailbox_len_and_peek():
    sim = Simulator()
    box = Mailbox(sim)
    assert len(box) == 0
    assert box.peek() is None
    box.deliver("a")
    box.deliver("b")
    assert len(box) == 2
    assert box.peek() == "a"
    assert box.messages_delivered == 2


def test_mailbox_has_waiters():
    sim = Simulator()
    box = Mailbox(sim)

    def waiter():
        yield box.recv()

    sim.spawn(waiter(), daemon=True)
    sim.run()
    assert box.has_waiters


# ---------------------------------------------------------------------------
# Signal
# ---------------------------------------------------------------------------


def test_signal_wakes_all_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woken = []

    def waiter(tag):
        value = yield sig
        woken.append((tag, value, sim.now))

    def firer():
        yield Timeout(2.0)
        sig.fire("go")

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(firer())
    sim.run()
    assert sorted(woken) == [
        ("a", "go", pytest.approx(2.0)),
        ("b", "go", pytest.approx(2.0)),
    ]


def test_signal_fire_idempotent():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire(1)
    sig.fire(2)
    assert sig.value == 1


def test_signal_after_fire_returns_immediately():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire("early")

    def waiter():
        value = yield sig
        return (value, sim.now)

    assert sim.run_process(waiter()) == ("early", 0.0)


# ---------------------------------------------------------------------------
# AllOf / AnyOf
# ---------------------------------------------------------------------------


def test_allof_waits_for_slowest():
    sim = Simulator()
    sigs = [Signal(sim) for _ in range(3)]
    for index, delay in enumerate([0.3, 0.1, 0.2]):
        sim.call_later(delay, sigs[index].fire, index)

    def waiter():
        values = yield AllOf(sigs)
        return (values, sim.now)

    values, when = sim.run_process(waiter())
    assert values == [0, 1, 2]
    assert when == pytest.approx(0.3)


def test_allof_with_all_fired_already():
    sim = Simulator()
    sigs = [Signal(sim) for _ in range(2)]
    for index, sig in enumerate(sigs):
        sig.fire(index * 10)

    def waiter():
        values = yield AllOf(sigs)
        return values

    assert sim.run_process(waiter()) == [0, 10]


def test_allof_empty_list():
    sim = Simulator()

    def waiter():
        values = yield AllOf([])
        return values

    assert sim.run_process(waiter()) == []


def test_anyof_returns_first():
    sim = Simulator()
    sigs = [Signal(sim) for _ in range(3)]
    sim.call_later(0.5, sigs[0].fire, "slow")
    sim.call_later(0.1, sigs[2].fire, "fast")

    def waiter():
        index, value = yield AnyOf(sigs)
        return (index, value, sim.now)

    index, value, when = sim.run_process(waiter())
    assert (index, value) == (2, "fast")
    assert when == pytest.approx(0.1)


def test_anyof_prefers_already_fired():
    sim = Simulator()
    sigs = [Signal(sim), Signal(sim)]
    sigs[1].fire("done")

    def waiter():
        return (yield AnyOf(sigs))

    assert sim.run_process(waiter()) == (1, "done")


# ---------------------------------------------------------------------------
# Resource / Lock
# ---------------------------------------------------------------------------


def test_resource_serializes_holders():
    sim = Simulator()
    disk = Resource(sim, capacity=1, name="disk")
    completions = []

    def user(tag):
        yield disk.acquire()
        yield Timeout(1.0)
        disk.release()
        completions.append((tag, sim.now))

    for tag in range(3):
        sim.spawn(user(tag))
    sim.run()
    assert completions == [
        (0, pytest.approx(1.0)),
        (1, pytest.approx(2.0)),
        (2, pytest.approx(3.0)),
    ]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    completions = []

    def user(tag):
        yield pool.acquire()
        yield Timeout(1.0)
        pool.release()
        completions.append((tag, sim.now))

    for tag in range(4):
        sim.spawn(user(tag))
    sim.run()
    times = [t for _tag, t in completions]
    assert times == pytest.approx([1.0, 1.0, 2.0, 2.0])


def test_resource_release_without_acquire_is_error():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_rejects_zero_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim)

    def user():
        yield res.acquire()
        yield Timeout(2.0)
        res.release()
        yield Timeout(2.0)

    sim.spawn(user())
    sim.run()
    assert res.utilization() == pytest.approx(0.5)
    assert res.total_acquires == 1


def test_resource_wait_time_accounting():
    sim = Simulator()
    res = Resource(sim)

    def holder():
        yield res.acquire()
        yield Timeout(3.0)
        res.release()

    def waiter():
        yield Timeout(1.0)
        yield res.acquire()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert res.total_wait_time == pytest.approx(2.0)


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim)
    lengths = []

    def holder():
        yield res.acquire()
        yield Timeout(5.0)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    def probe():
        yield Timeout(1.0)
        lengths.append(res.queue_length)

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.spawn(probe())
    sim.run()
    assert lengths == [2]


def test_lock_is_single_slot():
    sim = Simulator()
    lock = Lock(sim)
    assert lock.capacity == 1


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


def test_summary_statistics():
    from repro.sim import Summary

    summary = Summary("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        summary.observe(value)
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.min == 1.0
    assert summary.max == 4.0
    assert summary.total == pytest.approx(10.0)
    assert summary.stddev == pytest.approx(1.118, rel=1e-3)


def test_time_weighted_average():
    from repro.sim import TimeWeighted

    sim = Simulator()
    level = TimeWeighted(sim, initial=0.0)

    def body():
        level.set(2.0)
        yield Timeout(1.0)
        level.set(4.0)
        yield Timeout(1.0)
        level.set(0.0)
        yield Timeout(2.0)

    sim.spawn(body())
    sim.run()
    # (2*1 + 4*1 + 0*2) / 4 = 1.5
    assert level.average() == pytest.approx(1.5)


def test_stats_registry_snapshot():
    from repro.sim import StatsRegistry

    reg = StatsRegistry()
    reg.counter("ops").add(3)
    reg.summary("lat").observe(2.0)
    snap = reg.snapshot()
    assert snap["ops"] == 3
    assert snap["lat.mean"] == pytest.approx(2.0)
    assert snap["lat.count"] == 1
    # idempotent access returns same object
    assert reg.counter("ops").value == 3


def test_random_streams_deterministic_and_independent():
    from repro.sim import RandomStreams

    streams_a = RandomStreams(seed=7)
    streams_b = RandomStreams(seed=7)
    seq_a = [streams_a.stream("disk").random() for _ in range(5)]
    seq_b = [streams_b.stream("disk").random() for _ in range(5)]
    assert seq_a == seq_b
    other = [streams_a.stream("keys").random() for _ in range(5)]
    assert other != seq_a


def test_random_streams_order_independent():
    from repro.sim import RandomStreams

    streams_a = RandomStreams(seed=1)
    streams_a.stream("x")
    first = streams_a.stream("y").random()

    streams_b = RandomStreams(seed=1)
    second = streams_b.stream("y").random()
    assert first == second


def test_tracer_records_and_counts():
    from repro.sim import Timeout, Tracer

    tracer = Tracer(capacity=10)
    sim = Simulator(trace=tracer)
    tracer.attach(sim)

    def body():
        yield Timeout(1.0)

    sim.spawn(body(), name="traced")
    sim.run()
    assert tracer.counts["spawn"] == 1
    assert tracer.counts["exit"] == 1
    kinds = [r.kind for r in tracer.records()]
    assert "spawn" in kinds and "exit" in kinds
    assert "traced" in tracer.format()


def test_tracer_kind_filter():
    from repro.sim import Tracer

    tracer = Tracer(kinds={"spawn"})
    sim = Simulator(trace=tracer)
    tracer.attach(sim)

    def body():
        yield Timeout(0.1)

    sim.spawn(body())
    sim.run()
    assert all(r.kind == "spawn" for r in tracer.records())
    assert tracer.counts["exit"] == 1


def test_anyof_detaches_watchers_from_losing_signals():
    # A long-lived signal repeatedly raced against short-lived ones must
    # not accumulate one dead watcher per race.
    sim = Simulator()
    long_lived = Signal(sim)
    for round_number in range(5):
        quick = Signal(sim)
        sim.call_later(0.1, quick.fire, round_number)

        def waiter(q=quick):
            return (yield AnyOf([long_lived, q]))

        assert sim.run_process(waiter()) == (1, round_number)
    assert long_lived._waiters == []


def test_anyof_loser_firing_later_wakes_no_one():
    sim = Simulator()
    fast, slow = Signal(sim), Signal(sim)
    sim.call_later(0.1, fast.fire, "fast")

    def waiter():
        result = yield AnyOf([fast, slow])
        return result

    assert sim.run_process(waiter()) == (0, "fast")
    assert slow._waiters == []
    slow.fire("late")  # nothing to wake; must not blow up
    assert sim.run() >= 0.1
