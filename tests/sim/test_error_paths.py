"""Error-path tests for the kernel: failures inside combinators, server
loops, and spawned subprocesses must surface loudly, never silently."""

import pytest

from repro.errors import ProcessError
from repro.sim import AllOf, AnyOf, Signal, Simulator, Timeout, join_all


def test_error_in_joined_child_fails_simulation():
    sim = Simulator()

    def child():
        yield Timeout(0.1)
        raise RuntimeError("child exploded")

    def parent():
        process = sim.spawn(child(), name="child")
        yield process.join()

    sim.spawn(parent(), name="parent")
    with pytest.raises(ProcessError) as info:
        sim.run()
    assert info.value.process_name == "child"


def test_error_inside_join_all_group():
    sim = Simulator()

    def good():
        yield Timeout(0.2)
        return "ok"

    def bad():
        yield Timeout(0.1)
        raise ValueError("bad worker")

    def parent():
        children = [sim.spawn(good(), name="good"), sim.spawn(bad(), name="bad")]
        yield join_all(children)

    sim.spawn(parent())
    with pytest.raises(ProcessError) as info:
        sim.run()
    assert info.value.process_name == "bad"


def test_error_before_first_yield():
    sim = Simulator()

    def body():
        raise KeyError("instant")
        yield Timeout(1.0)  # pragma: no cover

    sim.spawn(body(), name="instant")
    with pytest.raises(ProcessError):
        sim.run()


def test_generator_exhaustion_without_return():
    sim = Simulator()

    def body():
        yield Timeout(0.1)
        # falls off the end: result is None

    process = sim.spawn(body())
    sim.run()
    assert process.done
    assert process.result is None


def test_anyof_loser_firing_later_is_harmless():
    sim = Simulator()
    first = Signal(sim)
    second = Signal(sim)
    sim.call_later(0.1, first.fire, "early")
    sim.call_later(0.5, second.fire, "late")

    def waiter():
        index, value = yield AnyOf([first, second])
        return index, value, sim.now

    index, value, when = sim.run_process(waiter())
    assert (index, value) == (0, "early")
    assert when == pytest.approx(0.1)
    sim.run()  # second fires with no one listening: must not error
    assert second.fired


def test_allof_mixed_fired_and_pending():
    sim = Simulator()
    done = Signal(sim)
    done.fire("already")
    pending = Signal(sim)
    sim.call_later(0.3, pending.fire, "later")

    def waiter():
        values = yield AllOf([done, pending])
        return values, sim.now

    values, when = sim.run_process(waiter())
    assert values == ["already", "later"]
    assert when == pytest.approx(0.3)


def test_rpc_handler_type_error_is_application_error():
    """Calling an op with wrong argument names ships a TypeError back to
    the caller instead of killing the server."""
    from repro.machine import Client, Machine, Server

    class Strict(Server):
        def op_echo(self, text):
            yield Timeout(0.0)
            return text

    sim = Simulator()
    machine = Machine(sim, 1)
    server = Strict(machine.node(0), "strict")
    client = Client(machine.node(0))

    def body():
        try:
            yield from client.call(server.port, "echo", wrong_name="x")
        except TypeError:
            pass
        # the server must still be alive and serving
        return (yield from client.call(server.port, "echo", text="alive"))

    assert sim.run_process(body()) == "alive"
    assert not server.process.done
