"""Tests for the synchronized storage-array baseline."""

import pytest

from repro.errors import BadBlockAddressError, DeviceFailedError
from repro.sim import Simulator
from repro.storage import StorageArray


def make_array(members=4, **kwargs):
    sim = Simulator(seed=11)
    array = StorageArray(sim, members, capacity_blocks=256, **kwargs)
    return sim, array


def test_roundtrip():
    sim, array = make_array()

    def body():
        yield from array.write(9, b"data")
        return (yield from array.read(9))

    assert sim.run_process(body()) == b"data"


def test_unwritten_reads_zeros():
    sim, array = make_array()

    def body():
        return (yield from array.read(0))

    assert sim.run_process(body()) == b"\x00" * 1024


def test_out_of_range():
    sim, array = make_array()

    def body():
        try:
            yield from array.read(1000)
        except BadBlockAddressError:
            return "caught"

    assert sim.run_process(body()) == "caught"


def test_needs_at_least_one_member():
    sim = Simulator()
    with pytest.raises(ValueError):
        StorageArray(sim, 0, capacity_blocks=16)


def test_single_member_failure_kills_device():
    sim, array = make_array()
    array.fail()

    def body():
        try:
            yield from array.read(0)
        except DeviceFailedError:
            return "dead"

    assert sim.run_process(body()) == "dead"


def test_expected_positioning_grows_with_members():
    _sim, small = make_array(members=2)
    _sim2, big = make_array(members=16)
    assert big.expected_positioning() > small.expected_positioning()
    # d/(d+1) formula
    assert small.expected_positioning() == pytest.approx(0.0167 * 2 / 3)


def test_sampled_positioning_tracks_analytic_mean():
    _sim, array = make_array(members=8)
    samples = [array.sample_positioning() for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(array.expected_positioning(), rel=0.05)


def test_positioning_worse_than_single_drive_but_transfer_scales():
    """The paper's point: arrays maximize rotational latency."""
    sim, array = make_array(members=12, transfer_time=0.012)

    def body():
        yield from array.read(0)
        return sim.now

    service = sim.run_process(body())
    # transfer shrank to 1 ms, but positioning pushes toward a full rotation
    assert service > array.seek_time + array.rotation_time / 2
    assert array.operations == 1
    assert array.busy_time == pytest.approx(service)
