"""S25 storage kernel: the driver registry and every registered backend.

Three layers of coverage:

* spec handling — normalization, rejection of malformed specs, the
  ``storage_specs`` fabric expansion, and third-party registration;
* the cross-driver contract — the same read/write/fail/counter
  semantics asserted against every registered kind, via the registry;
* backend-specific behavior — host-fs persistence across restarts and
  external-modification detection; object-store latency shape and
  bounded in-flight concurrency.
"""

import os

import pytest

from repro.errors import (
    BadBlockAddressError,
    DeviceFailedError,
    ProcessError,
)
from repro.sim import Simulator
from repro.storage import (
    DEFAULT_ACCESS_TIME,
    BlockStoreABC,
    DiskParameters,
    FixedLatency,
    HostFSDisk,
    ObjectStoreDisk,
    ObjectStoreLatency,
    SimulatedDisk,
    DRIVER_KINDS,
    make_driver,
    normalize_driver_spec,
    register_driver,
    storage_specs,
)

ALL_KINDS = ("ram", "hostfs", "object")


def spec_for(kind, tmp_path):
    """A usable spec for each registered kind (hostfs needs a root)."""
    if kind == "hostfs":
        return {"kind": "hostfs", "root": tmp_path}
    return kind


@pytest.fixture(params=ALL_KINDS)
def driver(request, tmp_path):
    """(sim, store) for every registered driver kind."""
    sim = Simulator(seed=3)
    store = make_driver(
        spec_for(request.param, tmp_path), sim, name="dut",
        capacity_blocks=64,
    )
    return sim, store


def run_ops(sim, gen):
    return sim.run_process(gen)


# ---------------------------------------------------------------------------
# Spec normalization and rejection
# ---------------------------------------------------------------------------


def test_none_normalizes_to_ram():
    assert normalize_driver_spec(None) == {"kind": "ram"}


def test_string_normalizes_to_kind_dict():
    assert normalize_driver_spec("object") == {"kind": "object"}


def test_dict_defaults_kind_to_ram():
    assert normalize_driver_spec({"access_time": 0.01}) == {
        "kind": "ram", "access_time": 0.01}


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown storage driver kind"):
        normalize_driver_spec("tape")


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="unknown field"):
        normalize_driver_spec({"kind": "ram", "first_byte": 0.1})


def test_non_spec_value_rejected():
    with pytest.raises(ValueError):
        normalize_driver_spec(42)


def test_hostfs_requires_root():
    with pytest.raises(ValueError, match="root"):
        make_driver("hostfs", Simulator(seed=1), name="d0")


def test_hostfs_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        make_driver({"kind": "hostfs", "root": tmp_path, "fsync": "maybe"},
                    Simulator(seed=1), name="d0")


def test_storage_specs_single_spec_fans_out():
    assert storage_specs("object", 3) == ["object"] * 3
    assert storage_specs(None, 2) == [None, None]


def test_storage_specs_list_length_checked():
    with pytest.raises(ValueError, match="per device"):
        storage_specs(["ram", "object"], 4)


def test_factory_callable_must_return_block_store():
    def bogus(sim, name, capacity_blocks):
        return "not a driver"

    with pytest.raises(ValueError, match="BlockStoreABC"):
        make_driver(bogus, Simulator(seed=1), name="d0")


def test_register_driver_extends_registry(tmp_path):
    class TaggedDisk(SimulatedDisk):
        kind = "tagged"

    def build(sim, spec, name, capacity_blocks, default_latency):
        params = DiskParameters(name=name, capacity_blocks=capacity_blocks)
        return TaggedDisk(sim, params, FixedLatency(0.001), name=name)

    register_driver("tagged", build, frozenset({"kind"}))
    try:
        store = make_driver("tagged", Simulator(seed=1), name="d0")
        assert isinstance(store, TaggedDisk)
        # Re-registration replaces the factory (third-party override).
        register_driver("tagged", build, frozenset({"kind"}))
        assert "tagged" in DRIVER_KINDS
    finally:
        del DRIVER_KINDS["tagged"]


# ---------------------------------------------------------------------------
# The cross-driver contract
# ---------------------------------------------------------------------------


def test_roundtrip_and_zero_fill(driver):
    sim, store = driver

    def body():
        yield from store.write(5, b"hello")
        written = yield from store.read(5)
        empty = yield from store.read(6)
        return written, empty

    written, empty = run_ops(sim, body())
    assert written.startswith(b"hello")
    assert empty == b"\x00" * store.params.block_size
    assert store.reads == 2 and store.writes == 1


def test_blocks_mapping_supports_corruption_injection(driver):
    sim, store = driver

    def write():
        yield from store.write(3, b"clean")

    run_ops(sim, write())
    store.blocks[3] = b"JUNK"

    def read():
        return (yield from store.read(3))

    assert run_ops(sim, read()).startswith(b"JUNK")


def test_address_validation(driver):
    sim, store = driver

    def oob():
        yield from store.read(store.params.capacity_blocks)

    with pytest.raises(ProcessError) as info:
        run_ops(sim, oob())
    assert isinstance(info.value.__cause__, BadBlockAddressError)

    def oversize():
        yield from store.write(0, b"x" * (store.params.block_size + 1))

    with pytest.raises(ProcessError) as info:
        run_ops(sim, oversize())
    assert isinstance(info.value.__cause__, BadBlockAddressError)


def test_fail_and_repair(driver):
    sim, store = driver
    store.fail()

    def doomed():
        yield from store.read(0)

    with pytest.raises(ProcessError) as info:
        run_ops(sim, doomed())
    assert isinstance(info.value.__cause__, DeviceFailedError)
    store.repair()

    def healthy():
        yield from store.write(1, b"back")
        return (yield from store.read(1))

    assert run_ops(sim, healthy()).startswith(b"back")


def test_wait_service_counters_stamped(driver):
    """The S19 contract: every completed op contributes one wait and one
    service observation, and busy time accumulates service time."""
    sim, store = driver

    def body():
        for block in range(4):
            yield from store.write(block, bytes([block]))
        for block in range(4):
            yield from store.read(block)

    run_ops(sim, body())
    assert store.wait_times.count == 8
    assert store.service_times.count == 8
    assert store.service_times.mean > 0.0
    assert store.busy_time == pytest.approx(store.service_times.total)
    assert store.total_operations == 8


def test_heat_attribution_hook(driver):
    """Installing a HeatMap attributes each op's busy time to the slot."""
    from repro.rebalance import HeatMap

    sim, store = driver
    heat = HeatMap(3, window=100.0)
    store.heat = heat
    store.heat_slot = 2

    def body():
        yield from store.write(0, b"x")
        yield from store.read(0)

    run_ops(sim, body())
    rates = heat.partition_rates(sim.now)
    assert rates[2] > 0.0
    assert rates[0] == rates[1] == 0.0
    assert rates[2] * heat.window == pytest.approx(store.busy_time)


# ---------------------------------------------------------------------------
# Host-fs specifics
# ---------------------------------------------------------------------------


def test_hostfs_blocks_live_in_real_files(tmp_path):
    sim = Simulator(seed=3)
    store = make_driver({"kind": "hostfs", "root": tmp_path}, sim,
                        name="d0", capacity_blocks=16)

    def body():
        yield from store.write(7, b"on disk")

    sim.run_process(body())
    path = os.path.join(tmp_path, "d0", "block_00000007.bin")
    assert os.path.exists(path)
    with open(path, "rb") as handle:
        assert handle.read().startswith(b"on disk")


def test_hostfs_restart_survival(tmp_path):
    """A new simulator over the same root sees the previous run's data."""
    first = Simulator(seed=3)
    store = make_driver({"kind": "hostfs", "root": tmp_path}, first,
                        name="d0", capacity_blocks=16)

    def write():
        yield from store.write(2, b"persist me")

    first.run_process(write())

    second = Simulator(seed=99)
    revived = make_driver({"kind": "hostfs", "root": tmp_path}, second,
                          name="d0", capacity_blocks=16)
    assert 2 in revived.blocks  # adopted at construction

    def read():
        return (yield from revived.read(2))

    assert second.run_process(read()).startswith(b"persist me")


def test_hostfs_detects_external_modification(tmp_path):
    sim = Simulator(seed=3)
    store = make_driver({"kind": "hostfs", "root": tmp_path}, sim,
                        name="d0", capacity_blocks=16)

    def body():
        yield from store.write(1, b"mine")

    sim.run_process(body())
    assert store.modified_externally() == []
    path = os.path.join(tmp_path, "d0", "block_00000001.bin")
    stamp = os.stat(path).st_mtime + 5
    with open(path, "wb") as handle:
        handle.write(b"theirs")
    os.utime(path, (stamp, stamp))
    assert store.modified_externally() == [1]


def test_hostfs_fsync_always_policy(tmp_path):
    sim = Simulator(seed=3)
    store = make_driver(
        {"kind": "hostfs", "root": tmp_path, "fsync": "always"}, sim,
        name="d0", capacity_blocks=16,
    )

    def body():
        yield from store.write(0, b"durable")
        return (yield from store.read(0))

    assert sim.run_process(body()).startswith(b"durable")
    store.flush()  # fsync-everything hook: a no-op error-free pass


# ---------------------------------------------------------------------------
# Object-store specifics
# ---------------------------------------------------------------------------


def test_object_latency_is_first_byte_plus_bandwidth():
    model = ObjectStoreLatency(first_byte=0.030, bandwidth=1024 * 1024)
    assert model.transfer_time(0) == pytest.approx(0.030)
    assert model.transfer_time(1024 * 1024) == pytest.approx(1.030)


def test_object_store_single_op_cost():
    sim = Simulator(seed=3)
    store = make_driver(
        {"kind": "object", "first_byte": 0.030, "bandwidth": 1024 * 1024},
        sim, name="obj", capacity_blocks=16,
    )

    def body():
        yield from store.write(0, b"x")
        return sim.now

    elapsed = sim.run_process(body())
    expected = 0.030 + store.params.block_size / (1024 * 1024)
    assert elapsed == pytest.approx(expected)


def test_object_store_bounds_inflight_ops():
    """8 concurrent ops with max_inflight=4 complete in exactly two
    waves, and wave two's requests record the wait."""
    sim = Simulator(seed=3)
    store = make_driver(
        {"kind": "object", "first_byte": 0.010, "bandwidth": 10**9,
         "max_inflight": 4},
        sim, name="obj", capacity_blocks=16,
    )
    per_op = ObjectStoreLatency(0.010, 10**9).transfer_time(
        store.params.block_size)

    def one(block):
        yield from store.write(block, bytes([block]))

    def body():
        from repro.sim import join_all

        procs = [sim.spawn(one(b), name=f"w{b}") for b in range(8)]
        yield join_all(procs)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(2 * per_op)
    assert store.wait_times.max == pytest.approx(per_op)
    # Overlapped service: total busy exceeds the elapsed window.
    assert store.busy_time == pytest.approx(8 * per_op)
    assert store.utilization() > 1.0


def test_object_store_concurrency_beats_serial_hostfs_contract():
    """The dispatcher drains the queue FIFO: op order is preserved in
    wait stamping (first four wait 0, last four wait one slot)."""
    sim = Simulator(seed=3)
    store = make_driver({"kind": "object", "max_inflight": 2}, sim,
                        name="obj", capacity_blocks=16)

    waits = []

    def one(block):
        yield from store.write(block, b"z")
        waits.append((block, store.wait_times.count))

    def body():
        from repro.sim import join_all

        procs = [sim.spawn(one(b), name=f"w{b}") for b in range(4)]
        yield join_all(procs)

    sim.run_process(body())
    assert store.wait_times.count == 4
    assert store.wait_times.min == 0.0
    assert store.wait_times.max > 0.0


# ---------------------------------------------------------------------------
# Registry-built drivers match direct construction
# ---------------------------------------------------------------------------


def test_registry_builds_expected_types(tmp_path):
    sim = Simulator(seed=3)
    assert isinstance(
        make_driver(None, sim, name="a"), SimulatedDisk)
    assert isinstance(
        make_driver({"kind": "hostfs", "root": tmp_path}, sim, name="b"),
        HostFSDisk)
    assert isinstance(
        make_driver("object", sim, name="c"), ObjectStoreDisk)


def test_ram_spec_latency_fields(tmp_path):
    sim = Simulator(seed=3)
    store = make_driver({"kind": "ram", "access_time": 0.002}, sim, name="d")
    assert store.latency.access_time == pytest.approx(0.002)
    default = make_driver(None, sim, name="e")
    assert default.latency.access_time == pytest.approx(DEFAULT_ACCESS_TIME)


def test_every_registered_kind_is_a_block_store(tmp_path):
    sim = Simulator(seed=3)
    for index, kind in enumerate(sorted(DRIVER_KINDS)):
        store = make_driver(spec_for(kind, tmp_path), sim,
                            name=f"k{index}", capacity_blocks=8)
        assert isinstance(store, BlockStoreABC)
        assert type(store).kind == kind
