"""Tests for the simulated disk, latency models, and schedulers."""

import pytest

from repro.errors import BadBlockAddressError, DeviceFailedError
from repro.sim import Simulator, Timeout
from repro.storage import (
    DiskGeometry,
    DiskParameters,
    FixedLatency,
    GeometricLatency,
    SimulatedDisk,
    make_scheduler,
    ramdisk,
    wren_fixed,
    wren_geometric,
)


def make_disk(sim=None, capacity=1024, access_time=0.015, scheduler=None):
    sim = sim or Simulator(seed=3)
    params = DiskParameters(name="test-disk", capacity_blocks=capacity)
    disk = SimulatedDisk(
        sim, params, FixedLatency(access_time), scheduler=scheduler
    )
    return sim, disk


# ---------------------------------------------------------------------------
# Basic read/write
# ---------------------------------------------------------------------------


def test_write_then_read_roundtrip():
    sim, disk = make_disk()

    def body():
        yield from disk.write(5, b"hello")
        data = yield from disk.read(5)
        return data

    assert sim.run_process(body()) == b"hello"


def test_unwritten_block_reads_zeros():
    sim, disk = make_disk()

    def body():
        return (yield from disk.read(0))

    data = sim.run_process(body())
    assert data == b"\x00" * 1024


def test_each_access_costs_fixed_latency():
    sim, disk = make_disk(access_time=0.015)

    def body():
        yield from disk.write(1, b"a")
        yield from disk.read(1)
        return sim.now

    assert sim.run_process(body()) == pytest.approx(0.030)


def test_out_of_range_read_raises():
    sim, disk = make_disk(capacity=10)

    def body():
        try:
            yield from disk.read(10)
        except BadBlockAddressError:
            return "caught"

    assert sim.run_process(body()) == "caught"


def test_negative_block_raises():
    sim, disk = make_disk(capacity=10)

    def body():
        try:
            yield from disk.read(-1)
        except BadBlockAddressError:
            return "caught"

    assert sim.run_process(body()) == "caught"


def test_oversize_write_raises():
    sim, disk = make_disk()

    def body():
        try:
            yield from disk.write(0, b"x" * 2000)
        except BadBlockAddressError:
            return "caught"

    assert sim.run_process(body()) == "caught"


def test_requests_are_serialized_on_one_arm():
    sim, disk = make_disk(access_time=0.010)
    finish_times = []

    def reader(block):
        yield from disk.read(block)
        finish_times.append(sim.now)

    for block in range(3):
        sim.spawn(reader(block))
    sim.run()
    assert finish_times == pytest.approx([0.010, 0.020, 0.030])


def test_stats_counters():
    sim, disk = make_disk(access_time=0.010)

    def body():
        yield from disk.write(0, b"a")
        yield from disk.read(0)
        yield from disk.read(1)

    sim.run_process(body())
    assert disk.reads == 2
    assert disk.writes == 1
    assert disk.total_operations == 3
    assert disk.busy_time == pytest.approx(0.030)
    assert disk.utilization() == pytest.approx(1.0)
    assert disk.service_times.count == 3


def test_wait_time_measured_under_contention():
    sim, disk = make_disk(access_time=0.010)

    def reader():
        yield from disk.read(0)

    sim.spawn(reader())
    sim.spawn(reader())
    sim.run()
    assert disk.wait_times.max == pytest.approx(0.010)


def test_load_image_installs_contents_without_time():
    sim, disk = make_disk()
    disk.load_image({3: b"abc", 7: b"xyz"})

    def body():
        data = yield from disk.read(3)
        return data

    assert sim.run_process(body()) == b"abc"
    assert sim.now == pytest.approx(0.015)


def test_load_image_validates_range():
    _sim, disk = make_disk(capacity=4)
    with pytest.raises(BadBlockAddressError):
        disk.load_image({9: b"zz"})


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


def test_failed_disk_errors_requests():
    sim, disk = make_disk()
    disk.fail()

    def body():
        try:
            yield from disk.read(0)
        except DeviceFailedError:
            return "dead"

    assert sim.run_process(body()) == "dead"


def test_fail_flushes_queued_requests():
    sim, disk = make_disk(access_time=1.0)
    outcomes = []

    def reader():
        try:
            yield from disk.read(0)
            outcomes.append("ok")
        except DeviceFailedError:
            outcomes.append("dead")

    def killer():
        yield Timeout(0.1)
        disk.fail()

    sim.spawn(reader())
    sim.spawn(reader())
    sim.spawn(killer())
    sim.run()
    # first request is already in service and completes; the queued one dies
    assert outcomes == ["dead", "ok"] or outcomes == ["ok", "dead"]
    assert "dead" in outcomes


def test_repair_restores_service_and_contents():
    sim, disk = make_disk()

    def body():
        yield from disk.write(2, b"persist")
        disk.fail()
        try:
            yield from disk.read(2)
        except DeviceFailedError:
            pass
        disk.repair()
        return (yield from disk.read(2))

    assert sim.run_process(body()) == b"persist"


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


def test_fixed_latency_rejects_negative():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_fixed_latency_jitter_bounded():
    import random

    model = FixedLatency(0.015, jitter=0.005)
    rng = random.Random(1)
    for _ in range(100):
        time, _pos = model.access(rng, 0, 5, 0.0)
        assert 0.010 <= time <= 0.020


def test_geometric_latency_zero_seek_same_cylinder():
    geometry = DiskGeometry(cylinders=10, tracks_per_cylinder=2, blocks_per_track=4)
    model = GeometricLatency(geometry)
    assert model.seek_time(0, 1) == 0.0  # same track
    assert model.seek_time(0, 4) == 0.0  # same cylinder, other track
    assert model.seek_time(0, 8) > 0.0  # next cylinder


def test_geometric_latency_seek_grows_with_distance():
    geometry = DiskGeometry(cylinders=100, tracks_per_cylinder=1, blocks_per_track=4)
    model = GeometricLatency(geometry)
    near = model.seek_time(0, 4)
    far = model.seek_time(0, 396)
    assert far > near > 0


def test_geometric_access_includes_rotation_and_transfer():
    import random

    geometry = DiskGeometry(cylinders=10, tracks_per_cylinder=1, blocks_per_track=4)
    model = GeometricLatency(geometry, rotation_time=0.016)
    rng = random.Random(0)
    time, pos = model.access(rng, 0, 1, now=0.0)
    assert pos == 1
    sector_time = 0.016 / 4
    # sector 1 at angle 0: wait 1/4 rotation, then one sector transfer
    assert time == pytest.approx(0.016 / 4 + sector_time)


def test_geometry_locate_roundtrip_and_bounds():
    geometry = DiskGeometry(cylinders=4, tracks_per_cylinder=3, blocks_per_track=5)
    assert geometry.capacity_blocks == 60
    assert geometry.locate(0) == (0, 0, 0)
    assert geometry.locate(5) == (0, 1, 0)
    assert geometry.locate(15) == (1, 0, 0)
    assert geometry.locate(59) == (3, 2, 4)
    with pytest.raises(ValueError):
        geometry.locate(60)


def test_geometry_track_helpers():
    geometry = DiskGeometry(cylinders=2, tracks_per_cylinder=2, blocks_per_track=4)
    assert geometry.track_id(5) == 1
    assert list(geometry.track_blocks(5)) == [4, 5, 6, 7]


def test_presets():
    params, latency = wren_fixed()
    assert params.capacity_bytes == 64 * 1024 * 1024
    assert latency.access_time == 0.015

    params_geo, latency_geo = wren_geometric()
    assert params_geo.geometry is not None
    assert latency_geo.mean_access_time() > 0

    params_ram, latency_ram = ramdisk()
    assert latency_ram.access_time < 0.001


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------


class _Req:
    def __init__(self, block):
        self.block = block


def test_fcfs_takes_first():
    scheduler = make_scheduler("fcfs")
    pending = [_Req(50), _Req(10), _Req(90)]
    assert scheduler.select(pending, head_position=0) == 0


def test_sstf_takes_nearest():
    scheduler = make_scheduler("sstf")
    pending = [_Req(50), _Req(10), _Req(90)]
    assert scheduler.select(pending, head_position=15) == 1
    assert scheduler.select(pending, head_position=80) == 2


def test_elevator_sweeps_then_reverses():
    scheduler = make_scheduler("elevator")
    pending = [_Req(50), _Req(10), _Req(90)]
    first = scheduler.select(pending, head_position=40)
    assert pending[first].block == 50
    pending_high = [_Req(10), _Req(5)]
    index = scheduler.select(pending_high, head_position=95)
    assert pending_high[index].block == 10  # reversed, takes nearest below


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        make_scheduler("lifo")


def test_sstf_reduces_total_service_time_vs_fcfs():
    """With a geometric disk, SSTF must beat FCFS on a scattered batch."""

    def run(scheduler_name):
        sim = Simulator(seed=9)
        params, latency = wren_geometric(capacity_blocks=4096)
        disk = SimulatedDisk(
            sim, params, latency, scheduler=make_scheduler(scheduler_name)
        )
        blocks = [3000, 10, 2900, 40, 2800, 70, 2700, 100]

        def reader(block):
            yield from disk.read(block)

        for block in blocks:
            sim.spawn(reader(block))
        sim.run()
        return sim.now

    assert run("sstf") < run("fcfs")
