"""Unit tests for list-I/O descriptors: pure arithmetic, no simulation."""

import pytest

from repro.collective import Extent, ListIORequest, coalesce_blocks
from repro.core.addressing import InterleaveMap


# ---------------------------------------------------------------------------
# Extent
# ---------------------------------------------------------------------------


def test_extent_blocks_and_stop():
    extent = Extent(5, 3)
    assert extent.stop == 8
    assert list(extent.blocks()) == [5, 6, 7]


@pytest.mark.parametrize("start,count", [(-1, 1), (0, 0), (3, -2)])
def test_extent_validation(start, count):
    with pytest.raises(ValueError):
        Extent(start, count)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def test_contiguous():
    request = ListIORequest.contiguous(4, 3)
    assert request.block_list() == [4, 5, 6]
    assert request.total_blocks == 3


def test_strided_single_blocks():
    request = ListIORequest.strided(start=1, stride=4, count=4)
    assert request.block_list() == [1, 5, 9, 13]


def test_strided_with_runs():
    request = ListIORequest.strided(start=0, stride=5, count=3, run_length=2)
    assert request.block_list() == [0, 1, 5, 6, 10, 11]


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(start=0, stride=0, count=4),
        dict(start=0, stride=4, count=0),
        dict(start=0, stride=4, count=4, run_length=0),
        dict(start=-1, stride=4, count=4),
        dict(start=0, stride=2, count=4, run_length=3),  # overlapping runs
    ],
)
def test_strided_validation(kwargs):
    with pytest.raises(ValueError):
        ListIORequest.strided(**kwargs)


def test_vector():
    request = ListIORequest.vector([9, 2, 30], run_length=2)
    assert request.block_list() == [9, 10, 2, 3, 30, 31]


def test_vector_validation():
    with pytest.raises(ValueError):
        ListIORequest.vector([])
    with pytest.raises(ValueError):
        ListIORequest.vector([1, 2], run_length=0)


def test_from_blocks_coalesces_maximal_extents():
    request = ListIORequest.from_blocks([0, 1, 2, 5, 6, 9])
    assert request.extents == (Extent(0, 3), Extent(5, 2), Extent(9, 1))
    assert request.block_list() == [0, 1, 2, 5, 6, 9]


def test_from_blocks_empty_rejected():
    with pytest.raises(ValueError):
        ListIORequest.from_blocks([])


def test_tuples_accepted_as_extents():
    request = ListIORequest([(0, 2), (7, 1)])
    assert request.extents == (Extent(0, 2), Extent(7, 1))


# ---------------------------------------------------------------------------
# Inspection
# ---------------------------------------------------------------------------


def test_min_max_and_len():
    request = ListIORequest([(10, 2), (3, 4)])
    assert request.min_block == 3
    assert request.max_block == 11
    assert len(request) == 2


def test_duplicates_preserved_in_request_order():
    request = ListIORequest([(5, 2), (5, 2)])
    assert request.block_list() == [5, 6, 5, 6]
    assert request.total_blocks == 4


def test_equality_and_hash():
    a = ListIORequest.strided(0, 4, 3)
    b = ListIORequest([(0, 1), (4, 1), (8, 1)])
    assert a == b
    assert hash(a) == hash(b)


# ---------------------------------------------------------------------------
# Decomposition
# ---------------------------------------------------------------------------


def test_decompose_groups_by_slot():
    imap = InterleaveMap(4)
    request = ListIORequest.contiguous(0, 8)
    decomposed = request.decompose(imap)
    assert decomposed == {0: [0, 1], 1: [0, 1], 2: [0, 1], 3: [0, 1]}


def test_decompose_deduplicates_and_sorts():
    imap = InterleaveMap(2)
    request = ListIORequest([(6, 1), (2, 1), (6, 1), (0, 1)])
    assert request.decompose(imap) == {0: [0, 1, 3]}


def test_decompose_respects_start_slot():
    imap = InterleaveMap(4, start=2)
    request = ListIORequest.contiguous(0, 4)
    assert sorted(request.decompose(imap)) == [0, 1, 2, 3]
    assert request.decompose(imap)[2] == [0]  # block 0 on slot (0+2) % 4


def test_slots_touched_strided_alignment():
    # Stride == width: every access lands on one slot.
    imap = InterleaveMap(8)
    request = ListIORequest.strided(3, 8, 32)
    assert request.slots_touched(imap) == [3]


def test_coalesce_blocks_runs():
    assert coalesce_blocks([]) == []
    assert coalesce_blocks([4]) == [Extent(4, 1)]
    assert coalesce_blocks([1, 2, 3, 7, 8]) == [Extent(1, 3), Extent(7, 2)]
