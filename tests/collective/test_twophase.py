"""Two-phase collective I/O: equivalence with the naive view, exact
message accounting, and conflict semantics."""

import random

import pytest

from repro.analysis.models import twophase_message_counts
from repro.collective import ListIORequest, TwoPhaseIO, elect_aggregators
from repro.core.addressing import InterleaveMap
from repro.errors import BridgeBadRequestError, ProcessError
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency
from repro.config import DATA_BYTES_PER_BLOCK
from repro.workloads import build_file, pattern_chunks


def padded_chunks(count, stamp=b"BLK"):
    """pattern_chunks padded to the full data area: EFS reads always
    return the zero-padded 960-byte data area, so full-size chunks make
    exact equality comparisons valid."""
    return [
        chunk.ljust(DATA_BYTES_PER_BLOCK, b"\x00")
        for chunk in pattern_chunks(count, stamp=stamp)
    ]


def make_system(p=4, seed=7):
    return BridgeSystem(p, seed=seed, disk_latency=FixedLatency(0.0001))


def payload(tag: int) -> bytes:
    return bytes([tag % 251]) * 960


# ---------------------------------------------------------------------------
# Election
# ---------------------------------------------------------------------------


def test_elect_aggregators_one_per_touched_slot():
    imap = InterleaveMap(4)
    assignment = elect_aggregators(imap, [[0, 4, 8], [1, 2]])
    assert sorted(assignment) == [0, 1, 2]
    assert assignment[0] == {0: [0, 4, 8]}
    assert assignment[1] == {1: [1]}
    assert assignment[2] == {1: [2]}


def test_elect_aggregators_dedups_per_worker_keeps_order():
    imap = InterleaveMap(2)
    assignment = elect_aggregators(imap, [[6, 2, 6, 0]])
    assert assignment == {0: {0: [6, 2, 0]}}


# ---------------------------------------------------------------------------
# Collective read
# ---------------------------------------------------------------------------


def test_read_matches_naive_view():
    system = make_system()
    blocks = 32
    chunks = padded_chunks(blocks)
    build_file(system, "f", chunks)
    engine = TwoPhaseIO(system, "f")
    per_worker = [[0, 4, 8], [1, 5, 2], [31, 30, 29]]

    def body():
        return (yield from engine.read(per_worker))

    data, stats = system.run(body())
    assert data == [[chunks[b] for b in wb] for wb in per_worker]
    assert stats.workers == 3


def test_read_accepts_listio_patterns():
    system = make_system()
    chunks = padded_chunks(16)
    build_file(system, "f", chunks)
    engine = TwoPhaseIO(system, "f")
    patterns = [ListIORequest.strided(0, 4, 4), ListIORequest.contiguous(1, 3)]

    def body():
        return (yield from engine.read(patterns))

    data, _stats = system.run(body())
    assert data[0] == [chunks[b] for b in (0, 4, 8, 12)]
    assert data[1] == [chunks[b] for b in (1, 2, 3)]


def test_read_randomized_equivalence():
    rng = random.Random(1234)
    system = make_system(p=5, seed=9)
    blocks = 60
    chunks = padded_chunks(blocks)
    build_file(system, "f", chunks)
    engine = TwoPhaseIO(system, "f")
    per_worker = [
        [rng.randrange(blocks) for _ in range(rng.randint(1, 20))]
        for _ in range(4)
    ]

    def body():
        return (yield from engine.read(per_worker))

    data, stats = system.run(body())
    # Byte-identical to the naive view, duplicates and order preserved.
    assert data == [[chunks[b] for b in wb] for wb in per_worker]
    # Message counts equal the analytic model exactly.
    model = twophase_message_counts(per_worker, 5)
    assert stats.aggregators == model["aggregators"]
    assert stats.efs_requests == model["efs_requests"]
    assert stats.exchange_messages == model["exchange_messages"]
    assert stats.redistribution_messages == model["redistribution_messages"]


def test_read_stats_one_efs_request_per_slot():
    system = make_system()
    build_file(system, "f", padded_chunks(16))
    engine = TwoPhaseIO(system, "f")

    def warm():
        yield from engine.open()

    system.run(warm())
    before = sum(s.requests_served for s in system.efs_servers)

    def body():
        return (yield from engine.read([[0, 4], [1, 2, 3]]))

    _data, stats = system.run(body())
    measured = sum(s.requests_served for s in system.efs_servers) - before
    assert measured == stats.efs_requests == 4  # slots {0}, {1, 2, 3}


def test_read_rejects_out_of_bounds():
    system = make_system()
    build_file(system, "f", padded_chunks(8))
    engine = TwoPhaseIO(system, "f")

    def body():
        yield from engine.read([[0, 8]])

    with pytest.raises(ProcessError) as excinfo:
        system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


def test_read_rejects_zero_workers():
    system = make_system()
    build_file(system, "f", padded_chunks(8))
    engine = TwoPhaseIO(system, "f")

    def body():
        yield from engine.read([])

    with pytest.raises(ProcessError) as excinfo:
        system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


# ---------------------------------------------------------------------------
# Collective write
# ---------------------------------------------------------------------------


def test_write_in_place_and_append():
    system = make_system()
    chunks = padded_chunks(10)
    build_file(system, "f", chunks)
    engine = TwoPhaseIO(system, "f")
    client = system.naive_client()
    writes = [
        [(2, payload(1)), (10, payload(2))],
        [(7, payload(3)), (11, payload(4))],
    ]

    def body():
        new_total, stats = yield from engine.write(writes)
        data = yield from client.list_read("f", [2, 7, 10, 11])
        return new_total, stats, data

    new_total, stats, data = system.run(body())
    assert new_total == 12
    assert data == [payload(1), payload(3), payload(2), payload(4)]
    assert stats.efs_requests == stats.aggregators


def test_write_randomized_equivalence():
    """Random collective writes produce exactly the file a sequential
    worker-by-worker replay of the same writes would."""
    rng = random.Random(99)
    system = make_system(p=4, seed=3)
    blocks = 24
    chunks = padded_chunks(blocks)
    build_file(system, "f", chunks)
    engine = TwoPhaseIO(system, "f")
    client = system.naive_client()
    worker_writes = []
    tag = 0
    for _worker in range(3):
        writes = []
        for _ in range(rng.randint(1, 8)):
            writes.append((rng.randrange(blocks), payload(tag)))
            tag += 1
        worker_writes.append(writes)
    # Reference: replay in worker order (later workers win conflicts).
    reference = list(chunks)
    for writes in worker_writes:
        for block, data in writes:
            reference[block] = data

    def body():
        yield from engine.write(worker_writes)
        return (yield from client.list_read("f", list(range(blocks))))

    assert system.run(body()) == reference


def test_write_conflict_higher_worker_wins():
    system = make_system()
    build_file(system, "f", padded_chunks(8))
    engine = TwoPhaseIO(system, "f")
    client = system.naive_client()

    def body():
        yield from engine.write(
            [[(5, payload(10))], [(5, payload(20))], [(5, payload(30))]]
        )
        return (yield from client.list_read("f", [5]))

    assert system.run(body()) == [payload(30)]


def test_write_rejects_sparse_append():
    system = make_system()
    build_file(system, "f", padded_chunks(8))
    engine = TwoPhaseIO(system, "f")

    def body():
        yield from engine.write([[(10, payload(1))]])  # hole at 8, 9

    with pytest.raises(ProcessError) as excinfo:
        system.run(body())
    assert isinstance(excinfo.value.__cause__, BridgeBadRequestError)


def test_write_empty_write_lists_is_noop():
    system = make_system()
    build_file(system, "f", padded_chunks(8))
    engine = TwoPhaseIO(system, "f")

    def body():
        return (yield from engine.write([[], []]))

    new_total, stats = system.run(body())
    assert new_total == 8
    assert stats.aggregators == 0


def test_write_resyncs_bridge_directory_after_append():
    system = make_system()
    build_file(system, "f", padded_chunks(4))
    engine = TwoPhaseIO(system, "f")
    client = system.naive_client()

    def body():
        yield from engine.write([[(4, payload(1)), (5, payload(2))]])
        # The naive view must see the appended blocks immediately.
        opened = yield from client.open("f")
        return opened.total_blocks

    assert system.run(body()) == 6
