"""Tests for the experiment runners (small configurations).

These are the same code paths the benches sweep; here they run at toy
scale and assert the paper's qualitative claims hold.
"""

import pytest

from repro.analysis import (
    table2_create_ms,
    table2_delete_ms,
    table2_open_ms,
    table2_read_ms,
    table2_write_ms,
)
from repro.harness.experiments import (
    measure_table2,
    run_copy_experiment,
    run_create_tree_experiment,
    run_faults_experiment,
    run_sort_experiment,
    run_striping_comparison,
    run_token_saturation,
    run_views_experiment,
)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def test_table2_shapes():
    m2 = measure_table2(2, file_blocks=128)
    m8 = measure_table2(8, file_blocks=128)
    # Open roughly constant in p (within 2x of the paper's 80 ms)
    assert 0.5 * table2_open_ms() < m2.open_ms < 2.0 * table2_open_ms()
    assert abs(m8.open_ms - m2.open_ms) < 30.0
    # Read beats raw disk latency and sits near 9 ms
    assert 4.0 < m2.read_ms_per_block < 15.0
    # Write near 31 ms, independent of p
    assert 25.0 < m2.write_ms_per_block < 45.0
    assert abs(m8.write_ms_per_block - m2.write_ms_per_block) < 5.0
    # Create grows with p
    assert m8.create_ms > m2.create_ms + 6 * 10.0
    # Delete ~20 ms per block per LFS, parallel across LFS
    assert 14.0 < m2.delete_ms_per_block_per_lfs < 28.0
    assert m8.delete_ms_total < m2.delete_ms_total


def test_table2_paper_formulas_sanity():
    assert table2_delete_ms(1000, 4) == 5000.0
    assert table2_create_ms(32) == 705.0
    assert table2_read_ms(1000, 2) == pytest.approx(10.0)
    assert table2_write_ms() == 31.0


# ---------------------------------------------------------------------------
# Copy (Table 3 shape)
# ---------------------------------------------------------------------------


def test_copy_experiment_speedup_shape():
    runs = {p: run_copy_experiment(p, blocks=256) for p in (2, 4, 8)}
    assert runs[2].elapsed / runs[4].elapsed > 1.7
    assert runs[4].elapsed / runs[8].elapsed > 1.6
    assert runs[8].records_per_second > runs[2].records_per_second * 3
    assert runs[2].paper_seconds == 311.6


# ---------------------------------------------------------------------------
# Sort (Table 4 shape)
# ---------------------------------------------------------------------------


def test_sort_experiment_phases_and_shape():
    """Table 4 shape at reduced scale (the paper used 10 923 records; at
    toy sizes per-pass file management overhead would drown the signal,
    so this uses enough records for per-record costs to dominate)."""
    runs = {
        p: run_sort_experiment(p, records=768, buffer_records=64)
        for p in (2, 4, 8)
    }
    for run in runs.values():
        assert run.total_seconds >= run.local_sort_seconds + run.merge_seconds - 1e-6
    # local phase superlinear: each doubling of p gains more than 2x
    assert runs[2].local_sort_seconds / runs[4].local_sort_seconds > 2.0
    assert runs[4].local_sort_seconds / runs[8].local_sort_seconds > 2.0
    # merge phase improves, but far less than linearly
    assert runs[2].merge_seconds > runs[8].merge_seconds
    assert runs[2].merge_seconds / runs[8].merge_seconds < 4.0
    assert runs[2].paper_minutes == (350.0, 17.0, 367.0)


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


def test_views_ordering_butterfly():
    """On the Butterfly (cheap messages) both parallel views beat naive;
    tool and parallel-open are comparable — the tool's edge is avoiding
    server indirection, 'a modest performance benefit' (section 6)."""
    run = run_views_experiment(4, blocks=64)
    assert run.tool_seconds < run.naive_seconds
    assert run.parallel_open_seconds < run.naive_seconds
    assert run.tool_seconds < run.parallel_open_seconds * 2.0
    # virtual parallelism (t=2p) moves twice the blocks per round but the
    # extra width is simulated: nowhere near a 2x speedup
    assert run.virtual_parallel_seconds > run.parallel_open_seconds * 0.6


def test_views_tool_wins_big_on_ethernet():
    """Section 1: when interprocessor communication is slow compared to
    aggregate I/O bandwidth (a broadcast network), exporting code to the
    data is the only view that keeps scaling — blocks never cross the bus."""
    run = run_views_experiment(16, blocks=256, network="ethernet")
    assert run.tool_seconds < run.parallel_open_seconds * 0.7
    assert run.tool_seconds < run.naive_seconds * 0.7


# ---------------------------------------------------------------------------
# Striping comparison
# ---------------------------------------------------------------------------


def test_striping_comparison_ordering():
    run = run_striping_comparison(4, blocks=128)
    # Striping beats one disk; the Bridge tool beats both on a copy-scale
    # workload (reads AND writes stay local).
    assert run.striped_seconds < run.sequential_seconds
    assert run.bridge_tool_seconds < run.sequential_seconds


# ---------------------------------------------------------------------------
# Token saturation
# ---------------------------------------------------------------------------


def test_token_saturation_rate_improves_then_flattens():
    slow = run_token_saturation(2, records=96)
    fast = run_token_saturation(8, records=96)
    assert fast.records_per_second > slow.records_per_second * 1.5


def test_token_saturation_validates_width():
    with pytest.raises(ValueError):
        run_token_saturation(3)
    with pytest.raises(ValueError):
        run_token_saturation(0)


# ---------------------------------------------------------------------------
# Create tree
# ---------------------------------------------------------------------------


def test_create_tree_wins_at_scale():
    run = run_create_tree_experiment(16)
    assert run.tree_ms < run.sequential_ms


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


def test_faults_experiment_outcomes():
    run = run_faults_experiment(p=4, blocks=8)
    assert run.plain_lost is True
    assert run.mirrored_recovered is True
    assert run.mirror_fallbacks == 2
    assert run.mirror_storage_blocks == 2 * run.plain_storage_blocks
