"""Tests for the result records and the builder's validation paths."""

import pytest

from repro.harness.builders import BridgeSystem, build_system, paper_system
from repro.harness.results import (
    CopyRun,
    SortRun,
    Table2Measurement,
    TokenSaturationRun,
    ViewsRun,
)


def test_copy_run_throughput():
    run = CopyRun(p=4, blocks=100, elapsed=10.0)
    assert run.records_per_second == 10.0
    assert CopyRun(p=4, blocks=0, elapsed=0.0).records_per_second == 0.0


def test_sort_run_throughput():
    run = SortRun(p=2, records=60, local_sort_seconds=20.0,
                  merge_seconds=10.0, total_seconds=30.0)
    assert run.records_per_second == 2.0


def test_table2_per_block_delete():
    m = Table2Measurement(
        p=4, file_blocks=100, open_ms=80.0, read_ms_per_block=9.0,
        write_ms_per_block=31.0, create_ms=215.0, delete_ms_total=500.0,
    )
    assert m.delete_ms_per_block_per_lfs == pytest.approx(500.0 / 25)


def test_views_run_throughput_map():
    run = ViewsRun(p=2, blocks=100, naive_seconds=10.0,
                   parallel_open_seconds=5.0, tool_seconds=4.0,
                   virtual_parallel_seconds=6.0)
    throughput = run.as_throughput()
    assert throughput["naive"] == 10.0
    assert throughput["tool"] == 25.0
    assert set(throughput) == {"naive", "parallel-open", "tool", "virtual(t=2p)"}


def test_token_run_rate():
    run = TokenSaturationRun(width=8, records=80, elapsed=4.0)
    assert run.records_per_second == 20.0


def test_builder_validation():
    with pytest.raises(ValueError):
        BridgeSystem(0)
    with pytest.raises(ValueError):
        BridgeSystem(2, bridge_server_count=0)


def test_builder_layout():
    system = build_system(3)
    assert system.width == 3
    assert len(system.machine) == 5  # 3 LFS + 1 server + 1 client
    assert system.server_node.index == 3
    assert system.client_node.index == 4
    assert [d.name for d in system.disks] == ["disk0", "disk1", "disk2"]
    assert all(n.lfs_port is not None for n in system.lfs_nodes)


def test_paper_system_uses_15ms_disks():
    system = paper_system(2)
    assert system.disks[0].latency.access_time == 0.015


def test_builder_without_relays():
    system = BridgeSystem(2, with_relays=False)
    assert system.relays == []
    assert system.bridge.relay_ports is None


def test_disk_utilization_helpers():
    from repro.workloads import build_file, pattern_chunks

    system = build_system(2)
    build_file(system, "u", pattern_chunks(8))
    assert system.total_disk_ops() > 0
    utils = system.disk_utilizations()
    assert len(utils) == 2
    assert all(0.0 <= u <= 1.0 for u in utils)
