"""S21 unit tests: admission-control mechanisms in isolation.

The queue and bucket are plain deterministic state machines, so these
tests drive them directly with synthetic request envelopes — no
simulator needed until the integration tests.
"""

from types import SimpleNamespace

import pytest

from repro.traffic import (
    DEFAULT_WEIGHTS,
    AdmissionControl,
    AdmissionQueue,
    TokenBucket,
    build_admission,
    classify,
)


def req(cls=None, method="random_read", seq=0, sent_at=None):
    return SimpleNamespace(traffic_class=cls, method=method, seq=seq,
                           sent_at=sent_at)


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def test_classify_prefers_explicit_stamp():
    assert classify(req(cls="parallel", method="random_read")) == "parallel"


def test_classify_falls_back_to_method_map():
    assert classify(req(method="random_read")) == "read"
    assert classify(req(method="seq_write")) == "write"
    assert classify(req(method="open")) == "meta"
    assert classify(req(method="list_read")) == "tool"
    assert classify(req(method="parallel_open")) == "parallel"
    assert classify(req(method="frobnicate")) == "other"
    assert classify(object()) == "other"


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------


def test_token_bucket_burst_then_refusal():
    bucket = TokenBucket(rate=10.0, burst=3.0)
    now = 0.0
    assert [bucket.try_take(now) for _ in range(4)] == [True, True, True, False]


def test_token_bucket_refills_over_time():
    bucket = TokenBucket(rate=10.0, burst=1.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    # 0.1 s at 10 tokens/s refills exactly one token.
    assert bucket.try_take(0.1)
    assert not bucket.try_take(0.1)


def test_token_bucket_caps_at_burst():
    bucket = TokenBucket(rate=100.0, burst=2.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    # A long idle period cannot bank more than ``burst`` tokens.
    taken = sum(bucket.try_take(10.0) for _ in range(10))
    assert taken == 2


def test_token_bucket_validates():
    with pytest.raises(ValueError):
        TokenBucket(0.0)
    with pytest.raises(ValueError):
        TokenBucket(10.0, burst=0.5)


# ---------------------------------------------------------------------------
# Bounded FIFO queue with shedding
# ---------------------------------------------------------------------------


def test_fifo_queue_preserves_order_and_measures_wait():
    queue = AdmissionQueue(depth=0)
    first, second = req(seq=1, sent_at=0.0), req(seq=2, sent_at=0.5)
    queue.enqueue(first, now=0.0)
    queue.enqueue(second, now=0.5)
    assert len(queue) == 2
    assert queue.pick(now=1.0) is first
    assert queue.pick(now=1.0) is second
    assert queue.wait.count == 2
    # Waits are measured from ``sent_at``: 1.0 and 0.5 seconds.
    assert queue.wait.total == pytest.approx(1.5)
    assert queue.peak_depth == 2


def test_wait_falls_back_to_enqueue_time_without_stamp():
    queue = AdmissionQueue()
    message = req(seq=1)
    message.sent_at = None
    queue.enqueue(message, now=2.0)
    queue.pick(now=2.25)
    assert queue.wait.total == pytest.approx(0.25)


def test_bounded_queue_sheds_past_depth_and_serves_rejects_first():
    queue = AdmissionQueue(depth=2)
    kept = [req(seq=i) for i in range(2)]
    for message in kept:
        queue.enqueue(message, now=0.0)
    overflow = req(seq=99)
    queue.enqueue(overflow, now=0.0)
    assert queue.shed_count == 1
    assert overflow.admission_shed is True
    # The reject lane outranks real work: shedding must be cheap.
    assert queue.pick(now=0.0) is overflow
    assert queue.pick(now=0.0) is kept[0]
    assert queue.pick(now=0.0) is kept[1]
    assert len(queue) == 0
    # Shed requests never pollute the wait histogram.
    assert queue.wait.count == 2


def test_queue_validates_depth():
    with pytest.raises(ValueError):
        AdmissionQueue(depth=-1)


# ---------------------------------------------------------------------------
# Weighted fair queueing
# ---------------------------------------------------------------------------


def test_wfq_backlogged_classes_share_by_weight():
    """A burst of 8 tool jobs arriving *before* 4 reads cannot starve
    them: with weights 4:1 every read is served within the first five
    picks."""
    queue = AdmissionQueue(depth=0, weights={"read": 4.0, "tool": 1.0})
    tools = [req(cls="tool", seq=i) for i in range(8)]
    reads = [req(cls="read", seq=100 + i) for i in range(4)]
    for message in tools + reads:
        queue.enqueue(message, now=0.0)
    order = [queue.pick(now=0.0) for _ in range(12)]
    first_five = order[:5]
    assert sum(1 for m in first_five if m.traffic_class == "read") >= 4
    # All twelve drain exactly once.
    assert sorted(id(m) for m in order) == sorted(id(m) for m in tools + reads)


def test_wfq_is_work_conserving_fifo_within_class():
    queue = AdmissionQueue(depth=0, weights=dict(DEFAULT_WEIGHTS))
    messages = [req(cls="read", seq=i) for i in range(5)]
    for message in messages:
        queue.enqueue(message, now=0.0)
    assert [queue.pick(now=0.0) for _ in range(5)] == messages


def test_wfq_unknown_class_uses_other_weight():
    queue = AdmissionQueue(depth=0, weights={"read": 4.0, "other": 1.0})
    queue.enqueue(req(cls="mystery", seq=1), now=0.0)
    assert queue.pick(now=0.0).traffic_class == "mystery"


def test_wfq_pick_empty_raises():
    with pytest.raises(IndexError):
        AdmissionQueue(depth=0, weights={"read": 1.0}).pick(now=0.0)


# ---------------------------------------------------------------------------
# build_admission
# ---------------------------------------------------------------------------


def test_build_admission_none_specs():
    assert build_admission(None) is None
    assert build_admission("none") is None
    assert build_admission({"policy": "none"}) is None


def test_build_admission_policies():
    bucket = build_admission({"policy": "token-bucket", "rate": 25, "burst": 5})
    assert bucket.bucket.rate == 25
    assert bucket.bucket.burst == 5
    assert bucket.queue is None

    bounded = build_admission({"policy": "bounded", "depth": 7})
    assert bounded.queue.depth == 7
    assert bounded.queue.weights is None

    fair = build_admission("fair")
    assert fair.queue.weights == DEFAULT_WEIGHTS

    fifo = build_admission("fifo")
    assert fifo.queue.depth == 0
    assert fifo.bucket is None


def test_build_admission_passthrough_and_errors():
    control = AdmissionControl("fifo", queue=AdmissionQueue())
    assert build_admission(control) is control
    with pytest.raises(ValueError):
        build_admission("predictive")
    with pytest.raises(ValueError):
        build_admission({"policy": "fifo", "depth": 3})
    with pytest.raises(TypeError):
        build_admission(42)


def test_build_admission_returns_fresh_instances():
    spec = {"policy": "fair", "depth": 4}
    first, second = build_admission(spec), build_admission(spec)
    assert first is not second
    assert first.queue is not second.queue
