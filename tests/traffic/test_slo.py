"""S21 unit tests: the SLO recorder's per-class outcome accounting."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.traffic import OUTCOMES, SLORecorder


def test_outcome_vocabulary_is_closed():
    recorder = SLORecorder()
    recorder.record_issue("read")
    with pytest.raises(ValueError):
        recorder.record_outcome("read", "vanished", 0.1)


def test_only_ok_outcomes_observe_latency():
    recorder = SLORecorder()
    for outcome in OUTCOMES:
        recorder.record_issue("read")
        recorder.record_outcome("read", outcome, 0.25)
    stats = recorder.classes["read"]
    assert stats.offered == len(OUTCOMES)
    assert stats.latency.count == 1  # only the "ok" completion
    assert all(stats.outcomes[outcome] == 1 for outcome in OUTCOMES)


def test_goodput_counts_only_completions():
    recorder = SLORecorder()
    for _ in range(8):
        recorder.record_issue("write")
        recorder.record_outcome("write", "ok", 0.01)
    for _ in range(4):
        recorder.record_issue("write")
        recorder.record_outcome("write", "shed", 0.001)
    assert recorder.goodput(2.0) == pytest.approx(4.0)
    assert recorder.total() == 12
    assert recorder.total("shed") == 4


def test_summary_reports_per_class_quantiles_and_rates():
    recorder = SLORecorder()
    for index in range(100):
        recorder.record_issue("read")
        recorder.record_outcome("read", "ok", 0.001 * (index + 1))
    recorder.record_issue("tool")
    recorder.record_outcome("tool", "abandoned", 9.0)
    summary = recorder.summary(duration=10.0)
    assert summary["offered"] == 101
    assert summary["completed"] == 100
    assert summary["abandoned"] == 1
    assert summary["goodput"] == pytest.approx(10.0)
    read = summary["classes"]["read"]
    assert set(("p50", "p99", "p999", "mean", "max")) <= set(read)
    assert read["p50"] <= read["p99"] <= read["p999"] <= read["max"]
    # The abandoned tool job contributes no latency sample.
    assert summary["classes"]["tool"]["p99"] == 0.0


def test_registry_adoption_exposes_latency_histograms():
    registry = MetricsRegistry()
    recorder = SLORecorder(registry=registry, prefix="traffic")
    recorder.record_issue("read")
    recorder.record_outcome("read", "ok", 0.002)
    snapshot = registry.snapshot()
    assert "traffic.read.latency" in snapshot
    assert snapshot["traffic.read.latency"]["count"] == 1
