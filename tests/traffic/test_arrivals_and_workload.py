"""S21 unit tests: arrival processes and workload samplers.

Everything here draws from plain ``random.Random`` instances — the
samplers must be pure functions of the RNG stream, because the traffic
generator's determinism guarantee reduces to exactly that.
"""

import random

import pytest

from repro.traffic import (
    CLASSES,
    BurstArrivals,
    PoissonArrivals,
    RequestMix,
    ZipfCatalog,
    make_arrivals,
    sample_request,
)

# ---------------------------------------------------------------------------
# Arrivals
# ---------------------------------------------------------------------------


def drain(process, seed, n=2_000):
    rng = random.Random(seed)
    return [process.next_delay(rng) for _ in range(n)]


def test_poisson_interarrivals_match_rate():
    gaps = drain(PoissonArrivals(200.0), seed=1, n=20_000)
    mean = sum(gaps) / len(gaps)
    assert abs(mean - 1 / 200.0) < 0.0005
    assert all(g >= 0 for g in gaps)


def test_poisson_same_seed_same_sequence():
    assert drain(PoissonArrivals(50.0), seed=7) == drain(
        PoissonArrivals(50.0), seed=7
    )
    assert drain(PoissonArrivals(50.0), seed=7) != drain(
        PoissonArrivals(50.0), seed=8
    )


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)


def test_burst_mean_rate_formula():
    process = BurstArrivals(100.0, burst_factor=4.0,
                            calm_mean=0.5, burst_mean=0.1)
    # Time-weighted average of the two state rates.
    expected = (100.0 * 0.5 + 400.0 * 0.1) / 0.6
    assert process.mean_rate == pytest.approx(expected)


def test_burst_long_run_rate_approaches_mean_rate():
    process = BurstArrivals(100.0, burst_factor=4.0,
                            calm_mean=0.2, burst_mean=0.05)
    gaps = drain(process, seed=3, n=50_000)
    measured = len(gaps) / sum(gaps)
    assert measured == pytest.approx(process.mean_rate, rel=0.05)


def test_burst_same_seed_same_sequence():
    def fresh():
        return BurstArrivals(80.0, burst_factor=5.0)

    assert drain(fresh(), seed=11) == drain(fresh(), seed=11)
    assert drain(fresh(), seed=11) != drain(fresh(), seed=12)


def test_burst_validates_parameters():
    with pytest.raises(ValueError):
        BurstArrivals(0.0)
    with pytest.raises(ValueError):
        BurstArrivals(10.0, burst_factor=0.5)
    with pytest.raises(ValueError):
        BurstArrivals(10.0, calm_mean=0.0)


def test_make_arrivals_dispatch():
    assert isinstance(make_arrivals("poisson", 10.0), PoissonArrivals)
    burst = make_arrivals("burst", 10.0, burst_factor=2.0)
    assert isinstance(burst, BurstArrivals)
    assert burst.burst_factor == 2.0
    with pytest.raises(ValueError):
        make_arrivals("uniform", 10.0)


# ---------------------------------------------------------------------------
# Workload samplers
# ---------------------------------------------------------------------------


def test_zipf_catalog_rank_zero_is_hottest():
    catalog = ZipfCatalog([f"f{i}" for i in range(16)], 8, skew=1.1)
    rng = random.Random(5)
    counts = {}
    for _ in range(20_000):
        name = catalog.sample(rng)
        counts[name] = counts.get(name, 0) + 1
    assert counts["f0"] > counts["f1"] > counts["f15"]
    # Zipf 1.1 over 16 files: the head takes a dominant share.
    assert counts["f0"] / 20_000 > 0.25


def test_zipf_catalog_is_deterministic():
    catalog = ZipfCatalog(["a", "b", "c"], 4)
    first = [catalog.sample(random.Random(2)) for _ in range(1)]
    second = [catalog.sample(random.Random(2)) for _ in range(1)]
    assert first == second
    assert len(catalog) == 3


def test_zipf_catalog_validates():
    with pytest.raises(ValueError):
        ZipfCatalog([], 4)
    with pytest.raises(ValueError):
        ZipfCatalog(["a"], 0)
    with pytest.raises(ValueError):
        ZipfCatalog(["a"], 4, skew=0.0)


def test_request_mix_rejects_unknown_class():
    with pytest.raises(ValueError):
        RequestMix({"read": 1.0, "scan": 1.0})
    with pytest.raises(ValueError):
        RequestMix({"read": 0.0})


def test_request_mix_single_class_always_wins():
    mix = RequestMix({"write": 1.0})
    rng = random.Random(9)
    assert {mix.sample(rng) for _ in range(100)} == {"write"}


def test_request_mix_default_covers_all_classes():
    mix = RequestMix()
    rng = random.Random(4)
    seen = {mix.sample(rng) for _ in range(5_000)}
    assert seen == set(CLASSES)


def test_sample_request_tool_gets_contiguous_span():
    catalog = ZipfCatalog(["a", "b"], 10)
    mix = RequestMix({"tool": 1.0})
    rng = random.Random(1)
    request = sample_request(0, catalog, mix, rng, tool_span=4)
    assert request.cls == "tool"
    assert request.blocks == list(range(request.blocks[0],
                                        request.blocks[0] + 4))
    assert all(0 <= b < 10 for b in request.blocks)


def test_sample_request_slow_fraction_sets_stall():
    catalog = ZipfCatalog(["a"], 4)
    mix = RequestMix({"read": 1.0})
    rng = random.Random(1)
    always = sample_request(0, catalog, mix, rng,
                            slow_fraction=1.0, slow_stall=0.25)
    assert always.stall == 0.25
    never = sample_request(1, catalog, mix, rng, slow_fraction=0.0)
    assert never.stall == 0.0
