"""S21 integration tests: the open-loop generator against live systems.

Covers the subsystem's three load-bearing guarantees:

* **Determinism** — same seed, same arrival log, same outcome summary,
  same event count; different seeds genuinely differ.
* **Admission outcomes are first-class** — refusals surface as typed
  errors, land in per-class counters on both sides (client SLO recorder
  and server admission control), and leak nothing: no dangling parallel
  jobs, clean fsck, coherent partition caches afterwards — at
  ``bridge_server_count`` 1 and 4.
* **Queueing-model cross-check** — a single-class Poisson run through
  the measuring FIFO front-end reproduces the M/D/1 predicted wait from
  :mod:`repro.analysis.models` (reads have deterministic ~1 ms service
  at the Bridge, so M/D/1 is the exact model and M/M/1 the upper bound).
"""

import dataclasses

import pytest

from repro.analysis import md1_wait_seconds, mm1_wait_seconds
from repro.errors import (
    BridgeAdmissionError,
    BridgeOverloadError,
    BridgeThrottledError,
)
from repro.harness.builders import BridgeSystem
from repro.harness.experiments import (
    build_traffic_catalog,
    run_traffic_experiment,
)
from repro.storage import FixedLatency
from repro.traffic import SLORecorder, TrafficGenerator


def make_system(servers=1, seed=11, **kwargs):
    return BridgeSystem(
        4, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, **kwargs,
    )


def drive(system, rate=120.0, duration=1.0, files=8, blocks=8, **gen_kwargs):
    catalog = build_traffic_catalog(system, files, blocks)
    recorder = SLORecorder()
    generator = TrafficGenerator(system, catalog, recorder=recorder,
                                 **gen_kwargs)
    system.run(generator.open_loop(rate, duration), name="traffic")
    return generator, recorder


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_same_seed_identical_arrivals_and_outcomes():
    first_gen, first_rec = drive(make_system(seed=11))
    second_gen, second_rec = drive(make_system(seed=11))
    assert first_gen.spawned == second_gen.spawned > 50
    assert first_gen.arrival_log == second_gen.arrival_log
    assert first_rec.summary(1.0) == second_rec.summary(1.0)


def test_distinct_seeds_distinct_arrival_orders():
    first_gen, _ = drive(make_system(seed=11))
    second_gen, _ = drive(make_system(seed=12))
    assert first_gen.arrival_log != second_gen.arrival_log


def test_same_seed_identical_experiment_rows():
    """The whole TrafficRun — the bench's JSON row source — replays
    byte-identically, including the simulated event count."""
    first = run_traffic_experiment(rate=80, duration=1.0, policy="fair",
                                   seed=21)
    second = run_traffic_experiment(rate=80, duration=1.0, policy="fair",
                                    seed=21)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    assert first.events == second.events
    third = run_traffic_experiment(rate=80, duration=1.0, policy="fair",
                                   seed=22)
    assert dataclasses.asdict(third) != dataclasses.asdict(first)


def test_executors_draw_no_randomness():
    """Arrival descriptors depend only on the seed, not on execution:
    a generator against a slower system (higher disk latency changes
    every completion interleaving) logs the same arrivals."""
    fast_gen, _ = drive(make_system(seed=31))
    slow = BridgeSystem(4, seed=31, disk_latency=FixedLatency(0.02))
    slow_gen, _ = drive(slow)
    assert [entry[1:] for entry in fast_gen.arrival_log] == [
        entry[1:] for entry in slow_gen.arrival_log
    ]


# ---------------------------------------------------------------------------
# Admission outcomes: typed errors, counters, no leaks
# ---------------------------------------------------------------------------


def test_throttled_refusal_is_a_typed_error():
    system = make_system()
    build_traffic_catalog(system, 2, 4)
    system.install_admission({"policy": "token-bucket", "rate": 1,
                              "burst": 1})
    client = system.naive_client()

    def body():
        yield from client.open("tf000")  # takes the only banked token
        try:
            yield from client.open("tf001")
        except BridgeThrottledError as error:
            return error
        return None

    error = system.run(body())
    assert isinstance(error, BridgeThrottledError)
    assert isinstance(error, BridgeAdmissionError)
    counters = system.admission_counters()
    assert counters["throttled"]["meta"] == 1
    assert counters["admitted"]["meta"] == 1


@pytest.mark.parametrize("servers", [1, 4])
def test_shed_traffic_leaves_no_leaks(servers):
    """Overdrive a fair-queued fabric so it sheds, then prove the
    aftermath is clean: counters agree across client and server,
    no parallel job state lingers, fsck passes, and the partition
    caches still serve the *new* generation after delete + re-create."""
    from repro.efs.fsck import check_system

    system = make_system(servers=servers, seed=9,
                         bridge_cache_blocks=64, prefetch_window=2)
    generator, recorder = drive(
        system, rate=300.0, duration=1.0,
        slow_fraction=0.1, patience=5.0,
    )
    # Install-after-build means setup was not rate-limited; re-drive
    # with the policy installed.
    system.install_admission({"policy": "fair", "depth": 4})
    second = TrafficGenerator(system, generator.catalog, recorder=recorder)
    system.run(second.open_loop(300.0, 1.0), name="traffic-overload")

    shed = recorder.total("shed")
    assert shed > 0, "overload run failed to shed"
    counters = system.admission_counters()
    assert sum(counters["shed"].values()) == shed
    assert set(counters["shed"]) <= {"read", "write", "meta", "tool",
                                     "parallel"}
    # Admission decisions cover every RPC that reached a server.
    assert sum(counters["offered"].values()) == (
        sum(counters["admitted"].values())
        + sum(counters["throttled"].values())
        + shed
    )

    # No leaked parallel-job state on any partition.
    for bridge in system.bridges:
        assert bridge._jobs == {}
    # On-disk structures are intact.
    assert all(report.clean for report in check_system(system))

    # Partition caches stayed coherent: the recreate harness still
    # reads back the new generation through the (still-installed)
    # admission queue.
    client = system.naive_client()

    def recreate():
        yield from client.create("x")
        yield from client.write_all("x", [b"old-%d|" % i for i in range(6)])
        first = yield from client.read_all("x")
        yield from client.delete("x")
        yield from client.create("x")
        yield from client.write_all("x", [b"new-%d|" % i for i in range(6)])
        second_read = yield from client.read_all("x")
        return first, second_read

    first, second_read = system.run(recreate())
    assert [c[:6] for c in first] == [b"old-%d|" % i for i in range(6)]
    assert [c[:6] for c in second_read] == [b"new-%d|" % i for i in range(6)]


def test_shed_refusals_skip_expensive_server_work():
    """A shed request costs the fast-reject CPU, not a directory probe:
    overload outcomes must be cheap or shedding cannot protect the
    server."""
    run = run_traffic_experiment(rate=240, duration=1.0, policy="bounded",
                                 admission_params={"depth": 4}, seed=13)
    assert run.summary["shed"] > 0
    # Shed latency is dominated by queue residence, never by service:
    # with depth 4 and ~ms service, refusals come back well under a
    # second even at 3x overload.
    shed_events = run.summary["shed"]
    assert run.admission is not None
    assert sum(run.admission["shed"].values()) == shed_events


def test_abandonment_is_recorded_and_server_survives():
    system = make_system(seed=17)
    _generator, recorder = drive(
        system, rate=250.0, duration=1.0, patience=0.05,
    )
    summary = recorder.summary(1.0)
    # At ~3x overload with 50 ms patience most clients walk away...
    assert summary["abandoned"] > 0
    # ...but the server finishes every queued request anyway (open loop:
    # abandoning the wait does not retract the work).
    assert summary["failed"] == 0
    resolved = sum(summary[key] for key in
                   ("completed", "throttled", "shed", "abandoned", "failed"))
    assert resolved == summary["offered"]


# ---------------------------------------------------------------------------
# Queueing-model cross-check (analysis satellite)
# ---------------------------------------------------------------------------


def test_md1_predicts_measured_queue_wait():
    """Pure reads have deterministic ~1 ms Bridge service, so the
    measured admission-queue wait at ρ ≈ 0.45 must match the M/D/1
    prediction once the constant network transit is calibrated out,
    with M/M/1 as a strict upper bound."""
    baseline = run_traffic_experiment(rate=10, duration=3.0, policy="fifo",
                                      mix={"read": 1.0}, seed=5)
    loaded = run_traffic_experiment(rate=450, duration=3.0, policy="fifo",
                                    mix={"read": 1.0}, seed=5)
    # The service rate is the deterministic per-request CPU: 1 ms.
    assert loaded.service_rate == pytest.approx(1000.0, rel=0.01)
    assert 0.35 < loaded.server_utilization < 0.55

    transit = baseline.queue_wait_mean  # ~network hop, no queueing
    measured = loaded.queue_wait_mean - transit
    lam = loaded.server_utilization * loaded.service_rate
    md1 = md1_wait_seconds(lam, loaded.service_rate)
    mm1 = mm1_wait_seconds(lam, loaded.service_rate)
    assert measured == pytest.approx(md1, rel=0.25)
    assert mm1 == pytest.approx(2.0 * md1, rel=1e-9)
    assert measured < mm1
    # The runner's own prediction fields agree with the direct math.
    assert loaded.predicted_wait_md1 == pytest.approx(md1, rel=0.05)
