"""Unit tests for causal spans and the critical-path partitioner.

These build synthetic span trees by hand (no simulator) so the
partition invariant — attribution sums to the root duration exactly —
is checked against known geometry.
"""

import pytest

from repro.obs import Observability, attribute, attribute_ops, critical_path
from repro.obs.export import span_tree_lines


class FakeSim:
    def __init__(self):
        self.now = 0.0


def make_obs():
    obs = Observability()
    obs.attach(FakeSim())
    return obs


def test_span_ids_are_monotonic_and_parents_link():
    obs = make_obs()
    root = obs.begin("op", "client")
    obs.set_current(root)
    child = obs.begin("msg", "net")
    assert root.id == 1 and child.id == 2
    assert child.parent_id == root.id
    orphan = obs.begin("other", "server", inherit=False)
    assert orphan.parent_id is None
    assert [s.id for s in obs.roots()] == [root.id, orphan.id]
    assert obs.children_index()[root.id] == [child]
    assert obs.find("ms") == [child]


def test_capacity_drops_and_counts():
    obs = make_obs()
    obs.capacity = 2
    a = obs.begin("a", "client")
    b = obs.begin("b", "client")
    c = obs.begin("c", "client")
    assert a is not None and b is not None and c is None
    assert obs.spans_dropped == 1
    obs.end(c)  # None-tolerant: no guard needed at call sites
    obs.end(a, extra=1)
    assert a.args == {"extra": 1}


def test_partition_invariant_with_gaps_and_nesting():
    obs = make_obs()
    sim = obs._sim
    root = obs.begin("op", "client")  # [0, 10]
    sim.now = 1.0
    net = obs.begin("msg", "net", parent=root)  # [1, 3]
    sim.now = 3.0
    obs.end(net)
    server = obs.begin("srv", "server", parent=root)  # [3, 9]
    sim.now = 4.0
    inner = obs.begin("msg2", "net", parent=server)  # [4, 6]
    sim.now = 6.0
    obs.end(inner)
    sim.now = 9.0
    obs.end(server)
    sim.now = 10.0
    obs.end(root)

    totals = attribute(obs, root)
    # gaps [0,1] and [9,10] are root self time (client); server self
    # time is [3,4] + [6,9]
    assert totals["client"] == pytest.approx(2.0)
    assert totals["net"] == pytest.approx(4.0)
    assert totals["server"] == pytest.approx(4.0)
    assert sum(totals.values()) == pytest.approx(root.duration)


def test_partition_excludes_background_and_unfinished_children():
    obs = make_obs()
    sim = obs._sim
    root = obs.begin("op", "client")
    sim.now = 2.0
    prefetch = obs.begin("prefetch", "server", parent=root, background=True)
    obs.end(prefetch, end=8.0)
    obs.begin("dangling", "net", parent=root)  # never ended
    sim.now = 10.0
    obs.end(root)
    totals = attribute(obs, root)
    assert totals["client"] == pytest.approx(10.0)
    assert totals["server"] == 0.0
    assert sum(totals.values()) == pytest.approx(root.duration)


def test_overlapping_children_never_double_count():
    obs = make_obs()
    sim = obs._sim
    root = obs.begin("op", "client")  # [0, 10]
    first = obs.begin("a", "net", parent=root)  # [0, 6]
    second = obs.begin("b", "server", parent=root)  # [0, 8], overlaps
    obs.end(first, end=6.0)
    obs.end(second, end=8.0)
    sim.now = 10.0
    obs.end(root)
    totals = attribute(obs, root)
    # walk cursor clips the overlap: a owns [0,6], b owns [6,8]
    assert totals["net"] == pytest.approx(6.0)
    assert totals["server"] == pytest.approx(2.0)
    assert sum(totals.values()) == pytest.approx(10.0)


def test_disk_self_time_splits_service_and_wait():
    obs = make_obs()
    sim = obs._sim
    root = obs.begin("op", "client")
    disk = obs.begin("disk0.read", "disk", parent=root)  # [0, 8]
    obs.end(disk, end=8.0, wait=1.0, service=3.0)  # 1:3 queue:disk
    sim.now = 8.0
    obs.end(root)
    totals = attribute(obs, root)
    assert totals["disk"] == pytest.approx(6.0)
    assert totals["queue"] == pytest.approx(2.0)
    assert sum(totals.values()) == pytest.approx(8.0)


def test_attribute_ops_aggregates_matching_roots():
    obs = make_obs()
    sim = obs._sim
    for index in range(3):
        sim.now = float(index)
        span = obs.begin(f"call.read", "client", inherit=False)
        sim.now = float(index) + 0.5
        obs.end(span)
    other = obs.begin("call.write", "client", inherit=False)
    obs.end(other, end=sim.now + 1.0)
    agg = attribute_ops(obs, "call.read")
    assert agg["ops"] == 3
    assert agg["latency_seconds"] == pytest.approx(1.5)
    assert sum(agg["attribution_seconds"].values()) == pytest.approx(1.5)
    assert agg["attribution_fractions"]["client"] == pytest.approx(1.0)


def test_critical_path_follows_largest_child():
    obs = make_obs()
    sim = obs._sim
    root = obs.begin("op", "client")
    small = obs.begin("small", "net", parent=root)
    obs.end(small, end=1.0)
    big = obs.begin("big", "server", parent=root)
    leaf = obs.begin("leaf", "disk", parent=big)
    obs.end(leaf, end=7.0)
    obs.end(big, end=8.0)
    sim.now = 10.0
    obs.end(root)
    assert [s.name for s in critical_path(obs, root)] == ["op", "big", "leaf"]


def test_span_tree_lines_renders_depth_and_background():
    obs = make_obs()
    root = obs.begin("op", "client")
    obs.set_current(root)
    bg = obs.begin("prefetch[3]", "server", background=True)
    obs.end(bg)
    obs.end(root)
    lines = span_tree_lines(obs, root)
    assert lines[0].startswith("op [client]")
    assert lines[1].startswith("  prefetch[3] [server]")
    assert lines[1].endswith("(bg)")
