"""Unit tests for the S19 metrics instruments and registry."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_and_gauge_basics():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge()
    gauge.set(2.5)
    gauge.set(1.0)
    assert gauge.value == 1.0


def test_histogram_bucketing_and_stats():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0, 10.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.counts == [1, 2, 1]
    assert hist.overflow == 1
    assert hist.min == 0.5 and hist.max == 10.0
    assert hist.mean == pytest.approx(16.5 / 5)
    snapshot = hist.bucket_snapshot()
    assert snapshot[-1] == (float("inf"), 1)


def test_histogram_quantiles_interpolate_deterministically():
    hist = Histogram(bounds=(1.0, 2.0))
    for _ in range(10):
        hist.observe(1.5)  # all land in the (1.0, 2.0] bucket
    # target = q * 10 inside a 10-count bucket spanning [1.0, 2.0]
    assert hist.quantile(0.5) == pytest.approx(1.5)
    assert hist.p50 == hist.quantile(0.5)
    # The raw interpolation would report the bucket edge (2.0), but no
    # observation ever exceeded 1.5 — tail quantiles clamp to the max.
    assert hist.quantile(1.0) == pytest.approx(1.5)
    # Identical observation streams give identical quantiles.
    other = Histogram(bounds=(1.0, 2.0))
    for _ in range(10):
        other.observe(1.5)
    assert other.bucket_snapshot() == hist.bucket_snapshot()
    assert other.p95 == hist.p95


def test_histogram_quantile_edge_cases():
    hist = Histogram(bounds=(1.0,))
    assert hist.quantile(0.5) == 0.0  # empty
    hist.observe(5.0)  # overflow only
    assert hist.quantile(0.99) == 5.0  # reports the observed max
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_extreme_quantiles_with_one_sample():
    # S21 satellite: a single observation must report *itself* at every
    # quantile — interpolation cannot invent values never observed.
    hist = Histogram(bounds=(1.0, 2.0))
    hist.observe(1.5)
    for q in (0.001, 0.5, 0.99, 0.999, 1.0):
        assert hist.quantile(q) == pytest.approx(1.5)
    assert hist.p999 == pytest.approx(1.5)


def test_extreme_quantiles_with_two_samples():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    hist.observe(1.2)
    hist.observe(3.0)
    # Low quantiles clamp to the smaller sample, high to the larger.
    assert hist.quantile(0.001) == pytest.approx(1.2)
    assert hist.quantile(0.999) == pytest.approx(3.0)
    assert hist.quantile(1.0) == pytest.approx(3.0)
    # The median stays an in-bucket interpolation between them.
    assert 1.2 <= hist.quantile(0.5) <= 3.0


def test_heavy_tail_quantiles_stay_ordered_and_bounded():
    hist = Histogram(bounds=(0.001, 0.01, 0.1, 1.0, 10.0))
    for _ in range(997):
        hist.observe(0.0005)
    for value in (2.0, 5.0, 50.0):  # 50.0 overflows the top bound
        hist.observe(value)
    quantiles = hist.quantiles((0.5, 0.99, 0.999, 1.0))
    assert quantiles[0.5] == pytest.approx(0.0005, abs=1e-3)
    # p999 must see the tail but never exceed the observed max.
    assert quantiles[0.999] > quantiles[0.99]
    assert quantiles[0.999] <= 50.0
    assert quantiles[1.0] == pytest.approx(50.0)
    # Monotone in q.
    ordered = [quantiles[q] for q in (0.5, 0.99, 0.999, 1.0)]
    assert ordered == sorted(ordered)


def test_registry_snapshot_includes_p999():
    registry = MetricsRegistry()
    registry.histogram("y.latency").observe(0.015)
    snapshot = registry.snapshot()
    assert snapshot["y.latency"]["p999"] == pytest.approx(0.015)


def test_default_bounds_cover_the_cost_model():
    # Sub-ms CPU charges, the 15 ms disk, and multi-second phases all
    # land in finite buckets.
    for value in (0.00025, 0.015, 2.0):
        hist = Histogram()
        hist.observe(value)
        assert hist.overflow == 0
    assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)


def test_registry_get_or_create_and_type_guard():
    registry = MetricsRegistry()
    counter = registry.counter("a.b")
    assert registry.counter("a.b") is counter
    with pytest.raises(TypeError):
        registry.gauge("a.b")
    with pytest.raises(TypeError):
        registry.histogram("a.b")
    assert registry.get("missing") is None


def test_registry_adopt_facade():
    registry = MetricsRegistry()
    external = Counter()
    registry.adopt("cache.hit", external)
    external.inc()
    assert registry.counter("cache.hit").value == 1
    # re-adopting the same object is idempotent; a different one is not
    registry.adopt("cache.hit", external)
    with pytest.raises(ValueError):
        registry.adopt("cache.hit", Counter())


def test_registry_snapshot_is_strict_json():
    import json

    registry = MetricsRegistry()
    registry.counter("x.count").inc(3)
    registry.gauge("x.level").set(0.5)
    registry.histogram("x.latency").observe(0.015)
    snapshot = registry.snapshot()
    text = json.dumps(snapshot, allow_nan=False)  # no inf/nan anywhere
    assert json.loads(text)["x.count"] == 3
    buckets = snapshot["x.latency"]["buckets"]
    assert buckets[-1][0] is None  # overflow edge rendered as null
    # prefix filtering
    assert registry.names("x.l") == ["x.latency", "x.level"]
    assert list(registry.snapshot("x.c")) == ["x.count"]
