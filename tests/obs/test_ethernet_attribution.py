"""Ethernet transit attribution: the shared bus prices a frame only when
the transmitter drains it, so the observability layer learns the exact
arrival time via ``on_bus_drain`` — frame spans carry a wait/service
breakdown and the critical-path partitioner splits bus contention into
``net`` (time on the wire) vs ``queue`` (time waiting for the medium).

The scenario is the classic two-sender contention case: both clients
transmit at t=0, so the second sender's frame waits exactly one
frame-time behind the first.  Every number below is derived by hand from
the bus parameters (1000 B/s, 0.1 s frame overhead, no local latency).
"""

import pytest

from repro.machine import Client, EthernetNetwork, Machine
from repro.machine.rpc import Server
from repro.obs import Observability, attribute
from repro.sim import Simulator, Timeout


class EchoServer(Server):
    def op_echo(self, tag):
        yield Timeout(0.0)
        return tag


def run_two_sender_contention():
    obs = Observability()
    sim = Simulator(obs=obs)
    network = EthernetNetwork(
        sim, bandwidth_bytes_per_s=1000.0, frame_overhead=0.1,
        local_latency=0.0,
    )
    machine = Machine(sim, 3, network=network)
    server = EchoServer(machine.node(2), "echo")
    results = {}

    def sender(index, size):
        client = Client(machine.node(index), name=f"c{index}")
        value = yield from client.call(server.port, "echo", size=size,
                                       tag=index)
        results[index] = (value, sim.now)

    # Sender 0 transmits a 1000-byte request (1.1 s frame), sender 1 a
    # 500-byte request (0.6 s frame); both enter the bus queue at t=0.
    machine.node(0).spawn(sender(0, 1000))
    machine.node(1).spawn(sender(1, 500))
    sim.run()
    return obs, results


def test_bus_drain_stamps_exact_wait_and_service():
    obs, results = run_two_sender_contention()
    assert results[0][0] == 0 and results[1][0] == 1

    frames = [s for s in obs.find("msg") if s.args.get("wait") is not None]
    assert len(frames) == 4  # two requests + two responses
    by_interval = {(round(s.start, 6), round(s.end, 6)): s for s in frames}

    # Request 0: head of the queue — all wire, no wait.
    req0 = by_interval[(0.0, 1.1)]
    assert req0.args["wait"] == pytest.approx(0.0)
    assert req0.args["service"] == pytest.approx(1.1)
    # Request 1: queued behind request 0's full frame.
    req1 = by_interval[(0.0, 1.7)]
    assert req1.args["wait"] == pytest.approx(1.1)
    assert req1.args["service"] == pytest.approx(0.6)
    # Response 0 (sent at 1.1): waits for request 1's frame to clear.
    rsp0 = by_interval[(1.1, 1.8)]
    assert rsp0.args["wait"] == pytest.approx(0.6)
    assert rsp0.args["service"] == pytest.approx(0.1)
    # Response 1 (sent at 1.7): waits for response 0's frame.
    rsp1 = by_interval[(1.7, 1.9)]
    assert rsp1.args["wait"] == pytest.approx(0.1)
    assert rsp1.args["service"] == pytest.approx(0.1)

    # The drain hook removed the zero-width marker from every frame.
    assert not any("queued" in s.args for s in frames)


def test_contention_attribution_is_exact_net_vs_queue():
    obs, _results = run_two_sender_contention()
    roots = [s for s in obs.roots() if s.name == "call.echo"]
    assert len(roots) == 2
    first = next(s for s in roots if s.node == 0)
    second = next(s for s in roots if s.node == 1)

    # Sender 0: request rides the wire immediately (1.1 s net); its
    # response spends 0.6 s queued behind sender 1's frame + 0.1 s wire.
    totals = attribute(obs, first)
    assert first.duration == pytest.approx(1.8)
    assert totals["net"] == pytest.approx(1.2)
    assert totals["queue"] == pytest.approx(0.6)
    assert totals["client"] == pytest.approx(0.0)
    assert sum(totals.values()) == pytest.approx(first.duration)

    # Sender 1: request waits 1.1 s for the bus then 0.6 s on the wire;
    # the response waits 0.1 s behind response 0 then 0.1 s on the wire.
    totals = attribute(obs, second)
    assert second.duration == pytest.approx(1.9)
    assert totals["net"] == pytest.approx(0.7)
    assert totals["queue"] == pytest.approx(1.2)
    assert totals["client"] == pytest.approx(0.0)
    assert sum(totals.values()) == pytest.approx(second.duration)


def test_deliver_at_matches_drain_time_for_requests_and_replies():
    obs, _results = run_two_sender_contention()
    # The mailbox-wait logic keys off deliver_at: with exact stamping,
    # neither request sat in the server's mailbox (the server was idle
    # when each frame arrived), so no queue span is attributed there.
    assert not obs.find("mailbox_wait")
