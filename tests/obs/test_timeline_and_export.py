"""Unit tests for utilization timelines and the Chrome trace exporter."""

import json

import pytest

from repro.obs import (
    Observability,
    QueueSamples,
    UtilizationTimeline,
    chrome_trace_document,
    export_chrome_trace,
    validate_trace_document,
)


class FakeSim:
    def __init__(self):
        self.now = 0.0


def test_disk_busy_fraction_clips_to_window():
    timeline = UtilizationTimeline()
    timeline.record_disk_busy("disk0", 0.0, 1.0)
    timeline.record_disk_busy("disk0", 2.0, 4.0)
    disk = timeline.disks["disk0"]
    assert disk.ops == 2
    assert disk.busy_total == pytest.approx(3.0)
    assert disk.busy_fraction(0.0, 4.0) == pytest.approx(0.75)
    # window clipping: only [2, 3] of the second segment counts
    assert disk.busy_fraction(0.5, 3.0) == pytest.approx(1.5 / 2.5)
    assert disk.busy_fraction(5.0, 5.0) == 0.0
    assert timeline.disk_busy_fractions(0.0, 4.0) == {"disk0": 0.75}


def test_node_traffic_counts_both_directions():
    timeline = UtilizationTimeline()
    timeline.record_message(src=1, dst=2, size=100, time=0.0)
    timeline.record_message(src=1, dst=2, size=50, time=1.0)
    assert timeline.nodes[1].messages_sent == 2
    assert timeline.nodes[1].bytes_sent == 150
    assert timeline.nodes[2].messages_received == 2
    assert timeline.nodes[2].bytes_received == 150


def test_queue_samples_cap_and_mean_depth():
    samples = QueueSamples(capacity=3)
    for t, depth in ((0.0, 1), (1.0, 3), (2.0, 1), (3.0, 5)):
        samples.record(t, depth)
    assert len(samples.samples) == 3
    assert samples.dropped == 1
    assert samples.max_depth == 5  # max tracks even dropped samples
    # time-weighted over the retained stream: 1*1 + 3*1 over 2 seconds
    assert samples.mean_depth() == pytest.approx(2.0)
    assert QueueSamples().mean_depth() == 0.0


def test_timeline_snapshot_is_plain_data():
    timeline = UtilizationTimeline()
    timeline.record_disk_busy("disk0", 0.0, 1.0)
    timeline.record_message(0, 1, 64, 0.5)
    timeline.record_queue_depth("disk0.queue", 0.5, 2)
    snapshot = timeline.snapshot()
    json.dumps(snapshot, allow_nan=False)
    assert snapshot["disks"]["disk0"]["ops"] == 1
    assert snapshot["nodes"]["0"]["messages_sent"] == 1
    assert snapshot["queues"]["disk0.queue"]["max_depth"] == 2


def _obs_with_tree():
    obs = Observability()
    sim = FakeSim()
    obs.attach(sim)
    root = obs.begin("call.read", "client", node=2)
    obs.set_current(root)
    sim.now = 0.001
    child = obs.begin("bridge.read", "server", node=1)
    sim.now = 0.002
    obs.end(child)
    sim.now = 0.003
    obs.end(root)
    obs.begin("unfinished", "net")  # must be skipped by the exporter
    return obs


def test_chrome_trace_document_structure():
    obs = _obs_with_tree()
    document = chrome_trace_document(obs)
    assert validate_trace_document(document) == []
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 2  # the unfinished span is not exported
    by_name = {e["name"]: e for e in complete}
    root_event = by_name["call.read"]
    child_event = by_name["bridge.read"]
    assert root_event["pid"] == 2 and child_event["pid"] == 1
    assert child_event["args"]["parent_id"] == root_event["args"]["span_id"]
    assert child_event["ts"] == pytest.approx(1000.0)  # microseconds
    assert child_event["dur"] == pytest.approx(1000.0)
    # metadata names every node row
    meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} >= {"node 1", "node 2"}


def test_export_chrome_trace_bytes_are_deterministic(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    export_chrome_trace(_obs_with_tree(), str(first))
    export_chrome_trace(_obs_with_tree(), str(second))
    assert first.read_bytes() == second.read_bytes()
    assert validate_trace_document(json.loads(first.read_text())) == []


def test_validate_trace_document_reports_problems():
    assert validate_trace_document({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [
        "not-an-object",
        {"ph": "Z", "name": "x", "pid": 0, "tid": 0},
        {"ph": "X", "name": 3, "pid": 0, "tid": 0, "ts": -1.0, "dur": 0.0},
    ]}
    problems = validate_trace_document(bad)
    assert any("not an object" in p for p in problems)
    assert any("unexpected phase" in p for p in problems)
    assert any("bad 'name'" in p for p in problems)
    assert any("bad 'ts'" in p for p in problems)
