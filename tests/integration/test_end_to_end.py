"""End-to-end integration tests: multiple tools and views composing over
the same system, determinism, and full-stack invariants."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency
from repro.tools import CopyTool, EncryptTool, GrepTool, SortTool, WordCountTool
from repro.tools.sort import key_of, make_record
from repro.workloads import (
    build_file,
    build_record_file,
    pattern_chunks,
    read_file,
    text_chunks,
    uniform_keys,
)


def make_system(p=4, seed=71, **kwargs):
    return BridgeSystem(p, seed=seed, disk_latency=FixedLatency(0.001), **kwargs)


def test_sort_then_grep_pipeline():
    """Sort a record file, then grep the sorted output for a payload."""
    system = make_system(4)
    keys = uniform_keys(40, seed=1)
    build_record_file(system, "raw", keys, payload_bytes=12, seed=1)

    sort_tool = SortTool(system.client_node, system.bridge.port, system.config)

    def sort_body():
        return (yield from sort_tool.run("raw", "by-key"))

    system.run(sort_body())

    # find the payload of the smallest key in the sorted file: must be block 0
    records = read_file(system, "by-key")
    needle = records[0][8:20]
    grep_tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def grep_body():
        return (yield from grep_tool.run("by-key", bytes(needle)))

    result = system.run(grep_body())
    assert any(m.global_block == 0 for m in result.matches)


def test_copy_then_sort_then_verify():
    """Copy an unsorted file, sort the copy, and confirm the original is
    untouched while the copy is sorted."""
    system = make_system(4)
    keys = uniform_keys(24, seed=2)
    build_record_file(system, "orig", keys, seed=2)

    copy_tool = CopyTool(system.client_node, system.bridge.port, system.config)
    sort_tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        yield from copy_tool.run("orig", "work")
        yield from sort_tool.run("work", "work-sorted")

    system.run(body())

    orig_keys = [key_of(r) for r in read_file(system, "orig")]
    sorted_keys_out = [key_of(r) for r in read_file(system, "work-sorted")]
    assert orig_keys == keys  # original untouched
    assert sorted_keys_out == sorted(keys)


def test_encrypt_grep_finds_nothing_then_decrypt_restores():
    system = make_system(4)
    chunks = text_chunks(12, seed=3, needle=b"SECRETWORD", needle_every=3)
    build_file(system, "plain", chunks)
    key = b"\x5a\xa5\x3c"

    def run_tool(tool, src, dst):
        def body():
            return (yield from tool.run(src, dst))

        return system.run(body())

    encrypt = EncryptTool(system.client_node, system.bridge.port,
                          system.config, key=key)
    run_tool(encrypt, "plain", "cipher")

    grep = GrepTool(system.client_node, system.bridge.port, system.config)

    def grep_body(name):
        return (yield from grep.run(name, b"SECRETWORD"))

    assert system.run(grep_body("cipher")).count == 0

    decrypt = EncryptTool(system.client_node, system.bridge.port,
                          system.config, key=key)
    run_tool(decrypt, "cipher", "restored")
    restored = system.run(grep_body("restored"))
    assert restored.count == 4  # blocks 0, 3, 6, 9


def test_concurrent_tools_on_disjoint_files():
    """Two tools running simultaneously on different files both succeed
    and produce correct output (the Bridge Server is a shared monitor)."""
    system = make_system(4)
    build_file(system, "a", pattern_chunks(16, stamp=b"AAA"))
    build_file(system, "b", pattern_chunks(16, stamp=b"BBB"))

    tool_a = CopyTool(system.client_node, system.bridge.port, system.config)
    tool_b = CopyTool(system.client_node, system.bridge.port, system.config)

    def driver(tool, src, dst):
        return (yield from tool.run(src, dst))

    process_a = system.client_node.spawn(driver(tool_a, "a", "a2"), name="ta")
    process_b = system.client_node.spawn(driver(tool_b, "b", "b2"), name="tb")
    system.sim.run()
    assert process_a.done and process_b.done

    for name, stamp in (("a2", b"AAA"), ("b2", b"BBB")):
        for index, chunk in enumerate(read_file(system, name)):
            assert chunk.startswith(stamp + b"-%08d|" % index)


def test_determinism_same_seed_same_timings():
    """Two identical runs produce bit-identical simulated times."""

    def run():
        system = make_system(4, seed=99)
        keys = uniform_keys(24, seed=9)
        build_record_file(system, "d", keys, seed=9)
        tool = SortTool(system.client_node, system.bridge.port, system.config)

        def body():
            return (yield from tool.run("d", "ds"))

        result = system.run(body())
        return result.total_time, system.sim.now, system.total_disk_ops()

    assert run() == run()


def test_naive_and_tool_views_see_identical_bytes():
    system = make_system(4)
    chunks = text_chunks(10, seed=4)
    build_file(system, "shared", chunks)

    naive = read_file(system, "shared")

    collected = {}

    class ReadingTool(WordCountTool):
        def _count(self, node, constituent):
            from repro.efs import EFSClient

            client = EFSClient(node, constituent.lfs_port)
            hint = constituent.head_addr
            for local_block in range(constituent.size_blocks):
                result = yield from client.read(
                    constituent.efs_file_number, local_block, hint=hint
                )
                hint = result.next_addr
                collected[result.global_block] = result.data
            return 0, 0, 0, constituent.size_blocks

    tool = ReadingTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("shared"))

    system.run(body())
    assert len(collected) == len(naive)
    for global_block, data in collected.items():
        assert data == naive[global_block]


def test_delete_and_recreate_same_name():
    system = make_system(4)
    client = system.naive_client()

    def body():
        yield from client.create("phoenix")
        yield from client.seq_write("phoenix", b"first life")
        yield from client.delete("phoenix")
        yield from client.create("phoenix")
        yield from client.seq_write("phoenix", b"second life")
        chunks = yield from client.read_all("phoenix")
        return chunks

    chunks = system.run(body())
    assert len(chunks) == 1
    assert chunks[0].startswith(b"second life")


def test_hundreds_of_small_files():
    """Directory scalability: many files coexisting on every LFS."""
    system = make_system(4)
    client = system.naive_client()
    count = 60

    def body():
        for index in range(count):
            name = f"file-{index}"
            yield from client.create(name)
            yield from client.seq_write(name, b"payload-%03d" % index)
        data = []
        for index in range(0, count, 7):
            chunks = yield from client.read_all(f"file-{index}")
            data.append(chunks[0][:11])
        return data

    data = system.run(body())
    for offset, chunk in zip(range(0, count, 7), data):
        assert chunk == b"payload-%03d" % offset


def test_large_single_file_roundtrip():
    """A file much larger than every cache: 1 000 blocks through the
    naive view, read back intact and in order."""
    system = make_system(8)
    chunks = pattern_chunks(1000)
    build_file(system, "bulk", chunks)
    back = read_file(system, "bulk")
    assert len(back) == 1000
    for original, copy in zip(chunks, back):
        assert copy.startswith(original)


def test_full_scale_smoke_paper_disks():
    """One end-to-end pass with the paper's real 15 ms disks (slow path)."""
    system = BridgeSystem(4, seed=5)  # default FixedLatency(0.015)
    keys = uniform_keys(32, seed=5)
    build_record_file(system, "smoke", keys)
    tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("smoke", "smoke-sorted"))

    result = system.run(body())
    assert result.total_time > 1.0  # real simulated seconds elapsed
    out = [key_of(r) for r in read_file(system, "smoke-sorted")]
    assert out == sorted(keys)
