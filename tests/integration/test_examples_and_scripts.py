"""Smoke tests: every example script and the reproduction driver must run
to completion as real subprocesses (the same way a user would run them)."""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def run_script(path, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
    )
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_quickstart_example():
    out = run_script(EXAMPLES / "quickstart.py")
    assert "[naive view]" in out
    assert "[parallel-open view]" in out
    assert "[tool view]" in out


def test_copy_speedup_example():
    out = run_script(EXAMPLES / "copy_speedup.py", "256")
    assert "speedup" in out
    assert "Table 3" in out


def test_external_sort_example():
    out = run_script(EXAMPLES / "external_sort.py", "128", "4")
    assert "verified: output is the sorted permutation" in out
    assert "local sort" in out


def test_parallel_grep_example():
    out = run_script(EXAMPLES / "parallel_grep.py", "96")
    assert "tool advantage" in out
    assert "Ethernet" in out


def test_fault_injection_example():
    out = run_script(EXAMPLES / "fault_injection.py")
    assert "LOST" in out
    assert "recovered" in out


def test_disordered_files_example():
    out = run_script(EXAMPLES / "disordered_files.py")
    assert "verified: contents and order preserved" in out


def test_observability_example():
    out = run_script(EXAMPLES / "observability.py")
    assert "call.seq_read [client]" in out
    assert "partition total" in out
    assert "disk busy fractions" in out
    assert "Perfetto" in out
    trace = REPO / "trace_observability.json"
    assert trace.exists()
    trace.unlink()  # keep the repo clean


def test_traffic_example():
    out = run_script(EXAMPLES / "traffic.py", "1.0")
    assert "latency vs offered load" in out
    assert "fair" in out
    assert "sheds excess arrivals" in out


def test_reproduction_script_quick():
    out = run_script(REPO / "scripts" / "run_reproduction.py", "--quick",
                     timeout=400)
    assert "Table 2" in out
    assert "Table 3" in out
    assert "Table 4" in out
    assert "mirrored file recovered:     True" in out
