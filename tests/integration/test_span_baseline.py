"""S20 replay guard: the acceptance workload vs the committed baseline.

The committed Chrome trace at ``tests/baselines/trace_acceptance.json``
pins the seed event sequence of every Bridge Server operation on the
default single-server configuration.  Re-exporting the acceptance
workload must reproduce it byte-for-byte; any drift fails with the
offending subtree.  This is the record-for-record acceptance check for
refactors of the request path (the S20 pipeline in particular).
"""

import json
import os

from repro.obs import diff_trace_documents, export_chrome_trace
from repro.workloads.acceptance import acceptance_driver, acceptance_system

BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "baselines", "trace_acceptance.json",
)


def test_acceptance_trace_matches_committed_baseline(tmp_path):
    system = acceptance_system(obs=True)
    summary = acceptance_driver(system)
    # Data-level outcome first: every view returned the right bytes.
    assert summary["alpha_blocks"] == 12
    assert summary["alpha_ok"] and summary["alpha_patched"]
    assert summary["list_read_ok"] and summary["list_write_total"] == 14
    assert summary["scatter_map_len"] == 6 and summary["scatter_first"]
    assert summary["info_width"] == 4
    assert summary["freed"] == 6
    assert summary["parallel_counts"] == [4, 4, 0]
    assert summary["parallel_total"] == 12
    assert summary["parallel_ok"]

    path = tmp_path / "trace.json"
    export_chrome_trace(system.obs, str(path))
    fresh = path.read_bytes()
    with open(BASELINE, "rb") as handle:
        baseline = handle.read()
    if fresh != baseline:
        report = diff_trace_documents(
            json.loads(baseline.decode("utf-8")),
            json.loads(fresh.decode("utf-8")),
        )
        raise AssertionError(
            "acceptance trace drifted from the committed baseline\n"
            + "\n".join(report)
        )


def _span_event(span_id, parent_id, name, ts, pid=0):
    return {
        "name": name, "cat": "server", "ph": "X", "ts": ts, "dur": 1.0,
        "pid": pid, "tid": 1,
        "args": {"span_id": span_id, "parent_id": parent_id},
    }


def test_diff_reports_offending_subtree():
    baseline = {"traceEvents": [
        _span_event(1, None, "bridge.seq_read", 0.0),
        _span_event(2, 1, "gather.read", 1.0),
        _span_event(3, 1, "gather.read", 2.0),
    ]}
    drifted = {"traceEvents": [
        _span_event(1, None, "bridge.seq_read", 0.0),
        _span_event(2, 1, "gather.read", 1.0),
        _span_event(3, 1, "gather.write", 2.0),
    ]}
    assert diff_trace_documents(baseline, baseline) == []
    report = diff_trace_documents(baseline, drifted)
    assert report
    assert "drift at event index 2" in report[0]
    text = "\n".join(report)
    # Both subtrees render, anchored at the shared root, with the
    # offending span marked.
    assert "bridge.seq_read" in text
    assert ">> " in text
    assert "gather.write" in text

    # Length mismatch is drift too.
    shorter = {"traceEvents": baseline["traceEvents"][:2]}
    report = diff_trace_documents(baseline, shorter)
    assert report and "baseline: 3 spans, candidate: 2" in report[0]
