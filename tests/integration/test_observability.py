"""S19 acceptance: determinism, attribution, and trace-export integration.

Three properties the subsystem promises:

* **obs off is free**: an instrumented build with ``obs=False`` executes
  the exact event sequence of the seed (verified by tracing obs-off and
  obs-on runs of the same workload and comparing record-for-record);
* **obs on is deterministic**: identical runs produce byte-identical
  Chrome traces, identical span trees, and identical histogram buckets;
* **attribution is exact**: the critical-path partition sums to the
  measured op latency (far inside the 1% acceptance bar) and matches
  the closed-form cost model per category.
"""

import json

import pytest

from repro.harness import paper_system
from repro.harness.experiments import run_obs_experiment
from repro.obs import export_chrome_trace, validate_trace_document
from repro.sim import Tracer


def _stream(system, name, blocks):
    client = system.naive_client()
    yield from client.create(name, width=system.width)
    for i in range(blocks):
        yield from client.seq_write(name, bytes([i % 256]) * 960)
    yield from client.open(name)
    for _ in range(blocks):
        yield from client.seq_read(name)


def _traced_run(p, blocks, obs):
    system = paper_system(p, obs=obs)
    tracer = Tracer(capacity=None).attach(system.sim)
    system.sim.trace = tracer
    system.run(_stream(system, "f", blocks))
    return system, [(r.time, r.kind) for r in tracer.records()]


def test_obs_off_replays_exact_seed_event_sequence():
    # The acceptance workload: p = 8, 256-block naive sequential read.
    bare_system, bare_records = _traced_run(8, 256, obs=False)
    obs_system, obs_records = _traced_run(8, 256, obs=True)
    assert bare_system.sim.events_executed == obs_system.sim.events_executed
    assert bare_system.sim.now == obs_system.sim.now
    # Record-for-record: same kinds at the same simulated times.
    assert bare_records == obs_records
    # And a second bare run replays the first exactly (seed determinism).
    again_system, again_records = _traced_run(8, 256, obs=False)
    assert again_records == bare_records
    assert again_system.sim.now == bare_system.sim.now


def test_obs_on_runs_are_byte_identical(tmp_path):
    paths = []
    snapshots = []
    trees = []
    for label in ("a", "b"):
        system = paper_system(4, obs=True, prefetch_window=2)
        system.run(_stream(system, "f", 128))
        path = tmp_path / f"{label}.json"
        export_chrome_trace(system.obs, str(path))
        paths.append(path)
        snapshots.append(system.obs.metrics.snapshot())
        trees.append([
            (s.id, s.parent_id, s.name, s.category, s.start, s.end,
             s.background)
            for s in system.obs.spans
        ])
    assert paths[0].read_bytes() == paths[1].read_bytes()
    assert trees[0] == trees[1]
    # histogram buckets (and every other instrument) identical
    assert snapshots[0] == snapshots[1]
    assert any(
        isinstance(value, dict) and value["count"] > 0
        for value in snapshots[0].values()
    )


def test_attribution_sums_to_measured_latency_and_matches_model():
    run = run_obs_experiment(p=8)
    assert run.ops == run.blocks
    # Acceptance bar is 1%; the partition is exact by construction.
    assert run.partition_error <= 0.01
    assert run.partition_error == pytest.approx(0.0, abs=1e-9)
    assert sum(run.attribution_seconds.values()) == pytest.approx(
        run.latency_seconds
    )
    # Per-category match against the closed-form naive-read model.
    assert run.max_model_error < 0.01
    assert run.event_sequence_identical
    assert run.spans_dropped == 0
    assert run.disk_busy_fractions  # timelines populated


def test_exported_trace_loads_full_span_tree(tmp_path):
    # Oversubscribe the EFS track caches (> 64 blocks per LFS) so the
    # read stream reaches the disks, and enable read-ahead so prefetch
    # children appear in the tree.
    path = tmp_path / "trace.json"
    system = paper_system(
        4, obs=True, prefetch_window=2, trace_export=str(path)
    )
    system.run(_stream(system, "f", 320))
    document = json.loads(path.read_text())
    assert validate_trace_document(document) == []

    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in events}

    def ancestors(event):
        chain = []
        while event is not None:
            chain.append(event)
            parent = event["args"].get("parent_id")
            event = by_id.get(parent)
        return chain

    # Bridge -> LFS -> disk: some disk read's ancestry passes through an
    # EFS handler and a Bridge-side span and terminates at a client root.
    disk_reads = [
        e for e in events
        if e["cat"] == "disk" and ".read" in e["name"]
    ]
    assert disk_reads, "no disk read spans in the exported trace"
    full_chains = 0
    for event in disk_reads:
        names = [a["name"] for a in ancestors(event)]
        cats = [a["cat"] for a in ancestors(event)]
        if (any(n.startswith("efs") for n in names)
                and any(n.startswith(("bridge", "prefetch", "call."))
                        for n in names)
                and cats[-1] == "client"):
            full_chains += 1
    assert full_chains > 0

    # Prefetch children: background fetch spans exist and have subtrees.
    prefetch = [e for e in events if e["name"].startswith("prefetch[")]
    assert prefetch, "no prefetch spans in the exported trace"
    assert all(e["args"].get("background") for e in prefetch)
    prefetch_ids = {e["args"]["span_id"] for e in prefetch}
    children_of_prefetch = [
        e for e in events if e["args"].get("parent_id") in prefetch_ids
    ]
    assert children_of_prefetch, "prefetch spans have no children"
    # Prefetch spans parent under a demand op, linking them to the tree.
    assert any(
        e["args"].get("parent_id") is not None for e in prefetch
    )
