"""Model-based property tests: random operation sequences executed both
against the simulated file systems and a trivial in-memory reference
model must agree at every step."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DATA_BYTES_PER_BLOCK, DEFAULT_CONFIG
from repro.efs import EFSClient, EFSServer
from repro.errors import (
    EFSBlockNotFoundError,
    EFSFileExistsError,
    EFSFileNotFoundError,
)
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import DiskParameters, FixedLatency, SimulatedDisk


# ---------------------------------------------------------------------------
# EFS vs dict-of-lists model
# ---------------------------------------------------------------------------

_efs_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(0, 3)),
        st.tuples(st.just("delete"), st.integers(0, 3)),
        st.tuples(st.just("append"), st.integers(0, 3), st.integers(0, 255)),
        st.tuples(
            st.just("write"),
            st.integers(0, 3),
            st.integers(0, 6),
            st.integers(0, 255),
        ),
        st.tuples(st.just("read"), st.integers(0, 3), st.integers(0, 6)),
        st.tuples(st.just("info"), st.integers(0, 3)),
    ),
    max_size=40,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_efs_ops)
def test_efs_agrees_with_reference_model(ops):
    sim = Simulator(seed=101)
    machine = Machine(sim, 1, config=DEFAULT_CONFIG)
    node = machine.node(0)
    disk = SimulatedDisk(
        sim, DiskParameters(name="d", capacity_blocks=2048), FixedLatency(1e-4)
    )
    server = EFSServer(node, disk, DEFAULT_CONFIG)
    client = EFSClient(node, server.port)

    model = {}  # file_number -> list of data payloads

    def payload(value):
        return bytes([value]) * 16

    def driver():
        for op in ops:
            kind = op[0]
            if kind == "create":
                _, number = op
                if number in model:
                    with pytest.raises(EFSFileExistsError):
                        yield from client.create(number)
                else:
                    yield from client.create(number)
                    model[number] = []
            elif kind == "delete":
                _, number = op
                if number not in model:
                    with pytest.raises(EFSFileNotFoundError):
                        yield from client.delete(number)
                else:
                    freed = yield from client.delete(number)
                    assert freed == len(model[number])
                    del model[number]
            elif kind == "append":
                _, number, value = op
                if number not in model:
                    with pytest.raises(EFSFileNotFoundError):
                        yield from client.append(number, payload(value))
                else:
                    result = yield from client.append(number, payload(value))
                    assert result.block_number == len(model[number])
                    model[number].append(payload(value))
            elif kind == "write":
                _, number, block, value = op
                if number not in model:
                    with pytest.raises(EFSFileNotFoundError):
                        yield from client.write(number, block, payload(value))
                elif block > len(model[number]):
                    with pytest.raises(EFSBlockNotFoundError):
                        yield from client.write(number, block, payload(value))
                else:
                    yield from client.write(number, block, payload(value))
                    if block == len(model[number]):
                        model[number].append(payload(value))
                    else:
                        model[number][block] = payload(value)
            elif kind == "read":
                _, number, block = op
                if number not in model:
                    with pytest.raises(EFSFileNotFoundError):
                        yield from client.read(number, block)
                elif block >= len(model[number]):
                    with pytest.raises(EFSBlockNotFoundError):
                        yield from client.read(number, block)
                else:
                    result = yield from client.read(number, block)
                    assert result.data[:16] == model[number][block]
            elif kind == "info":
                _, number = op
                if number not in model:
                    with pytest.raises(EFSFileNotFoundError):
                        yield from client.info(number)
                else:
                    info = yield from client.info(number)
                    assert info.size_blocks == len(model[number])
        # final sweep: every file readable end to end
        for number, blocks in model.items():
            chunks = yield from client.read_file(number)
            assert len(chunks) == len(blocks)
            for expected, actual in zip(blocks, chunks):
                assert actual[:16] == expected

    sim.run_process(driver())
    # structural oracle: the on-disk image must satisfy every invariant
    from repro.efs.fsck import check_efs

    report = check_efs(server)
    assert report.clean, report.errors


# ---------------------------------------------------------------------------
# Bridge naive view vs list model
# ---------------------------------------------------------------------------

_bridge_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 255)),
        st.tuples(st.just("rread"), st.integers(0, 30)),
        st.tuples(st.just("rwrite"), st.integers(0, 30), st.integers(0, 255)),
        st.tuples(st.just("reopen")),
    ),
    max_size=30,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_bridge_ops, width=st.sampled_from([1, 2, 4]), start=st.integers(0, 3))
def test_bridge_naive_view_agrees_with_reference_model(ops, width, start):
    from repro.errors import BridgeBadRequestError
    from repro.harness.builders import BridgeSystem

    start %= width
    system = BridgeSystem(width, seed=103, disk_latency=FixedLatency(1e-4))
    client = system.naive_client()
    model = []

    def payload(value):
        return bytes([value]) * 8

    def driver():
        yield from client.create("f", start=start)
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, value = op
                block = yield from client.seq_write("f", payload(value))
                assert block == len(model)
                model.append(payload(value))
            elif kind == "rread":
                _, block = op
                if block >= len(model):
                    with pytest.raises(BridgeBadRequestError):
                        yield from client.random_read("f", block)
                else:
                    data = yield from client.random_read("f", block)
                    assert data[:8] == model[block]
            elif kind == "rwrite":
                _, block, value = op
                if block > len(model):
                    with pytest.raises(BridgeBadRequestError):
                        yield from client.random_write("f", block, payload(value))
                else:
                    yield from client.random_write("f", block, payload(value))
                    if block == len(model):
                        model.append(payload(value))
                    else:
                        model[block] = payload(value)
            elif kind == "reopen":
                opened = yield from client.open("f")
                assert opened.total_blocks == len(model)
        chunks = yield from client.read_all("f")
        assert len(chunks) == len(model)
        for expected, actual in zip(model, chunks):
            assert actual[:8] == expected

    system.run(driver())
