"""Tests for the baseline systems: sequential FS, striping, placements."""

import pytest

from repro.baselines import (
    ChunkedPlacement,
    HashedPlacement,
    RoundRobinPlacement,
    SequentialSystem,
    StripedSystem,
    expected_distinct_nodes_hashed,
    measured_batch_parallelism,
    prob_all_distinct_hashed,
    sequential_window_rounds,
)
from repro.workloads import pattern_chunks


# ---------------------------------------------------------------------------
# Sequential FS
# ---------------------------------------------------------------------------


def test_sequential_copy_preserves_contents():
    system = SequentialSystem(seed=1)
    chunks = pattern_chunks(10)
    src = system.build_file(chunks)
    result = system.copy_file(src)
    assert result.blocks == 10
    copied = system.read_file(src + 1)
    for original, copy in zip(chunks, copied):
        assert copy.startswith(original)


def test_sequential_copy_time_linear_in_n():
    system = SequentialSystem(seed=2)
    small = system.build_file(pattern_chunks(8))
    large = system.build_file(pattern_chunks(32))
    time_small = system.copy_file(small).elapsed
    time_large = system.copy_file(large).elapsed
    ratio = time_large / time_small
    assert 3.0 < ratio < 5.0  # O(n): 4x the blocks ~ 4x the time


def test_sequential_file_numbers_unique():
    system = SequentialSystem()
    assert system.allocate_file_number() != system.allocate_file_number()


# ---------------------------------------------------------------------------
# Striping
# ---------------------------------------------------------------------------


def test_striped_roundtrip():
    system = StripedSystem(4, seed=3)
    chunks = pattern_chunks(16)
    system.build_file("s", chunks)
    blocks, _elapsed = system.read_throughput("s")
    assert blocks == 16


def test_striping_distributes_across_disks():
    system = StripedSystem(4, seed=4)
    system.build_file("s", pattern_chunks(16))
    writes = [disk.writes for disk in system.disks]
    assert writes == [4, 4, 4, 4]


def test_striping_beats_single_disk_sequential_read():
    def read_time(d):
        system = StripedSystem(d, seed=5)
        system.build_file("s", pattern_chunks(64))
        _blocks, elapsed = system.read_throughput("s")
        return elapsed

    assert read_time(4) < read_time(1)


def test_striping_saturates_at_fs_software_throughput():
    """Section 2: striped files are limited by the FS software.  Past the
    point where disks overlap fully, more disks stop helping."""

    def read_time(d):
        system = StripedSystem(d, seed=6)
        system.build_file("s", pattern_chunks(128))
        _blocks, elapsed = system.read_throughput("s")
        return elapsed

    speedup_low = read_time(1) / read_time(4)    # disks still the bottleneck
    speedup_high = read_time(16) / read_time(32)  # software now dominates
    assert speedup_low > 3.0
    assert speedup_high < 1.4


def test_striping_needs_a_disk():
    import repro.baselines.striping as striping
    from repro.machine import Machine
    from repro.sim import Simulator
    from repro.config import DEFAULT_CONFIG

    sim = Simulator()
    machine = Machine(sim, 1, config=DEFAULT_CONFIG)
    with pytest.raises(ValueError):
        striping.StripedServer(machine.node(0), [], DEFAULT_CONFIG)


# ---------------------------------------------------------------------------
# Distribution strategies
# ---------------------------------------------------------------------------


def test_round_robin_consecutive_always_distinct():
    placement = RoundRobinPlacement(8)
    assert measured_batch_parallelism(placement, 256, 8) == 8.0
    assert sequential_window_rounds(placement, 256, 8) == 1.0


def test_hashed_consecutive_rarely_distinct():
    placement = HashedPlacement(8, salt=1)
    parallelism = measured_batch_parallelism(placement, 4096, 8)
    assert parallelism < 6.5  # well below the ideal 8
    assert sequential_window_rounds(placement, 4096, 8) > 1.3


def test_hashed_probability_formula():
    # p=8, window 8: 8!/8^8
    import math

    expected = math.factorial(8) / 8**8
    assert prob_all_distinct_hashed(8, 8) == pytest.approx(expected)
    assert prob_all_distinct_hashed(8, 8) < 0.0025  # "extremely low"
    assert prob_all_distinct_hashed(4, 5) == 0.0
    assert prob_all_distinct_hashed(4, 1) == 1.0


def test_expected_distinct_formula_matches_measurement():
    placement = HashedPlacement(8, salt=7)
    analytic = expected_distinct_nodes_hashed(8, 8)
    measured = measured_batch_parallelism(placement, 8192, 8)
    assert measured == pytest.approx(analytic, rel=0.08)


def test_chunked_no_parallelism_within_chunk():
    placement = ChunkedPlacement(4)
    # file of 64 blocks: chunks of 16; any window of 4 falls in one chunk
    assert measured_batch_parallelism(placement, 64, 4) == 1.0
    assert sequential_window_rounds(placement, 64, 4) == 4.0


def test_chunked_append_forces_reorganization():
    placement = ChunkedPlacement(4)
    moves = placement.append_moves(64, 128)
    assert moves > 0
    assert not placement.supports_append()
    assert RoundRobinPlacement(4).append_moves(64, 128) == 0
    assert RoundRobinPlacement(4).supports_append()
    assert HashedPlacement(4).append_moves(64, 128) == 0


def test_chunked_node_mapping():
    placement = ChunkedPlacement(4)
    assert placement.node_of(0, 64) == 0
    assert placement.node_of(15, 64) == 0
    assert placement.node_of(16, 64) == 1
    assert placement.node_of(63, 64) == 3


def test_placements_reject_zero_nodes():
    with pytest.raises(ValueError):
        RoundRobinPlacement(0)
    with pytest.raises(ValueError):
        ChunkedPlacement(0)
    with pytest.raises(ValueError):
        HashedPlacement(0)
