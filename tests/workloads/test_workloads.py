"""Tests for workload generators and file builders."""

import pytest

from repro.config import DATA_BYTES_PER_BLOCK
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency
from repro.tools.sort import key_of
from repro.workloads import (
    build_file,
    build_record_file,
    build_text_file,
    few_distinct_keys,
    pattern_chunks,
    read_file,
    record_chunks,
    reversed_keys,
    sorted_keys,
    text_chunks,
    uniform_keys,
)


def make_system():
    return BridgeSystem(4, seed=81, disk_latency=FixedLatency(0.0005))


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def test_uniform_keys_deterministic():
    assert uniform_keys(10, seed=3) == uniform_keys(10, seed=3)
    assert uniform_keys(10, seed=3) != uniform_keys(10, seed=4)


def test_sorted_and_reversed_keys():
    keys = sorted_keys(20, seed=1)
    assert keys == sorted(keys)
    rev = reversed_keys(20, seed=1)
    assert rev == sorted(rev, reverse=True)
    assert sorted(rev) == keys


def test_few_distinct_keys():
    keys = few_distinct_keys(100, distinct=5, seed=2)
    assert len(set(keys)) <= 5
    assert len(keys) == 100


def test_record_chunks_shape():
    chunks = record_chunks([7, 3], payload_bytes=10)
    assert all(len(c) == DATA_BYTES_PER_BLOCK for c in chunks)
    assert key_of(chunks[0]) == 7
    assert key_of(chunks[1]) == 3


def test_text_chunks_fit_blocks():
    chunks = text_chunks(5, seed=1)
    assert len(chunks) == 5
    assert all(len(c) <= DATA_BYTES_PER_BLOCK for c in chunks)
    assert all(b"\n" in c for c in chunks)


def test_text_chunks_needle_placement():
    chunks = text_chunks(9, seed=2, needle=b"MARK", needle_every=3)
    hits = [i for i, c in enumerate(chunks) if b"MARK" in c]
    assert hits == [0, 3, 6]


def test_pattern_chunks_self_identifying():
    chunks = pattern_chunks(3, stamp=b"XY")
    assert chunks[2].startswith(b"XY-00000002|")


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def test_build_and_read_roundtrip():
    system = make_system()
    chunks = pattern_chunks(7)
    file_id = build_file(system, "f", chunks)
    assert file_id >= 1
    back = read_file(system, "f")
    assert len(back) == 7
    for original, copy in zip(chunks, back):
        assert copy.startswith(original)


def test_build_record_file_keys_in_order():
    system = make_system()
    keys = [9, 1, 5]
    build_record_file(system, "recs", keys)
    back = [key_of(r) for r in read_file(system, "recs")]
    assert back == keys


def test_build_text_file_with_needles():
    system = make_system()
    build_text_file(system, "log", 6, seed=3, needle=b"HIT", needle_every=2)
    back = read_file(system, "log")
    assert sum(1 for c in back if b"HIT" in c) == 3


def test_build_file_with_subset_slots():
    system = make_system()
    build_file(system, "narrow", pattern_chunks(4), node_slots=[1, 2])
    client = system.naive_client()

    def body():
        return (yield from client.open("narrow"))

    opened = system.run(body())
    assert opened.width == 2
    assert [c.node_index for c in opened.constituents] == [1, 2]
