"""Tests for access-pattern traces and their replay costs."""

import pytest

from repro.harness.builders import BridgeSystem
from repro.workloads import build_file, pattern_chunks
from repro.workloads.traces import (
    random_trace,
    replay_trace,
    sequential_trace,
    strided_trace,
    zipf_trace,
)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def test_sequential_trace():
    assert sequential_trace(4) == [0, 1, 2, 3]
    assert sequential_trace(2, repeats=2) == [0, 1, 0, 1]
    assert sequential_trace(0) == []
    with pytest.raises(ValueError):
        sequential_trace(-1)


def test_strided_trace_permutation():
    trace = strided_trace(8, 3)  # gcd(3, 8) = 1
    assert sorted(trace) == list(range(8))
    assert trace == [0, 3, 6, 1, 4, 7, 2, 5]
    with pytest.raises(ValueError):
        strided_trace(8, 0)
    assert strided_trace(0, 3) == []


def test_random_trace_bounds_and_determinism():
    trace = random_trace(16, 100, seed=5)
    assert len(trace) == 100
    assert all(0 <= b < 16 for b in trace)
    assert trace == random_trace(16, 100, seed=5)
    assert trace != random_trace(16, 100, seed=6)


def test_zipf_trace_skews_to_head():
    trace = zipf_trace(64, 2000, skew=1.5, seed=7)
    assert all(0 <= b < 64 for b in trace)
    head = sum(1 for b in trace if b < 8)
    tail = sum(1 for b in trace if b >= 32)
    assert head > tail * 2  # hot head dominates
    with pytest.raises(ValueError):
        zipf_trace(8, 10, skew=0.0)


# ---------------------------------------------------------------------------
# Replay costs
# ---------------------------------------------------------------------------


def make_loaded_system(blocks=64, p=4):
    system = BridgeSystem(p, seed=141)  # real 15 ms disks
    build_file(system, "traced", pattern_chunks(blocks))
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    return system


def test_replay_counts_accesses():
    system = make_loaded_system(blocks=16)
    result = system.run(
        replay_trace(system, "traced", sequential_trace(16), "seq")
    )
    assert result.accesses == 16
    assert result.pattern == "seq"
    assert result.ms_per_access > 0


def test_sequential_cheaper_than_random():
    """The paper's bet: linked-list files reward sequential access and
    punish random access (Table 2's read vs the 'very slow random
    access' of section 3)."""
    blocks = 64
    system = make_loaded_system(blocks=blocks)
    seq = system.run(
        replay_trace(system, "traced", sequential_trace(blocks), "seq")
    )
    system2 = make_loaded_system(blocks=blocks)
    rand = system2.run(
        replay_trace(
            system2, "traced", random_trace(blocks, blocks, seed=3), "rand"
        )
    )
    assert rand.ms_per_access > seq.ms_per_access * 1.5


def test_zipf_cheaper_than_uniform_random_due_to_cache():
    """Hotspot traces re-touch cached blocks; uniform random does not."""
    blocks = 96
    system = make_loaded_system(blocks=blocks)
    hot = system.run(
        replay_trace(
            system, "traced", zipf_trace(blocks, 128, skew=1.5, seed=9), "zipf"
        )
    )
    system2 = make_loaded_system(blocks=blocks)
    uniform = system2.run(
        replay_trace(
            system2, "traced", random_trace(blocks, 128, seed=9), "uniform"
        )
    )
    assert hot.ms_per_access < uniform.ms_per_access
