"""Noncontiguous pattern generators (S17): shapes and validation."""

import pytest

from repro.workloads import hotspot_pattern, scatter_pattern, strided_pattern


# ---------------------------------------------------------------------------
# strided_pattern
# ---------------------------------------------------------------------------


def test_strided_pattern_single_blocks():
    assert strided_pattern(0, 4, 4) == [0, 4, 8, 12]


def test_strided_pattern_runs():
    assert strided_pattern(1, 5, 3, run_length=2) == [1, 2, 6, 7, 11, 12]


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(start=0, stride=0, count=4),
        dict(start=0, stride=-2, count=4),
        dict(start=0, stride=4, count=0),
        dict(start=0, stride=4, count=-1),
        dict(start=0, stride=4, count=4, run_length=0),
        dict(start=-1, stride=4, count=4),
        dict(start=0, stride=2, count=4, run_length=3),
    ],
)
def test_strided_pattern_validation(kwargs):
    with pytest.raises(ValueError):
        strided_pattern(**kwargs)


# ---------------------------------------------------------------------------
# scatter_pattern
# ---------------------------------------------------------------------------


def test_scatter_pattern_distinct_sorted_in_bounds():
    pattern = scatter_pattern(100, 30, seed=5)
    assert len(pattern) == 30
    assert len(set(pattern)) == 30
    assert pattern == sorted(pattern)
    assert all(0 <= block < 100 for block in pattern)


def test_scatter_pattern_deterministic_by_seed():
    assert scatter_pattern(64, 16, seed=3) == scatter_pattern(64, 16, seed=3)
    assert scatter_pattern(64, 16, seed=3) != scatter_pattern(64, 16, seed=4)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(file_blocks=0, count=1),
        dict(file_blocks=10, count=0),
        dict(file_blocks=10, count=11),
    ],
)
def test_scatter_pattern_validation(kwargs):
    with pytest.raises(ValueError):
        scatter_pattern(**kwargs)


# ---------------------------------------------------------------------------
# hotspot_pattern
# ---------------------------------------------------------------------------


def test_hotspot_pattern_concentrates_accesses():
    pattern = hotspot_pattern(1000, 500, hot_fraction=0.1, hot_weight=0.9,
                              seed=11)
    assert len(pattern) == 500
    in_hot = sum(1 for block in pattern if block < 100)
    assert in_hot > 400  # ~90% + the uniform tail's spillover


def test_hotspot_pattern_bounds():
    pattern = hotspot_pattern(50, 200, seed=2)
    assert all(0 <= block < 50 for block in pattern)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(file_blocks=0, count=1),
        dict(file_blocks=10, count=0),
        dict(file_blocks=10, count=5, hot_fraction=0.0),
        dict(file_blocks=10, count=5, hot_fraction=1.5),
        dict(file_blocks=10, count=5, hot_weight=-0.1),
        dict(file_blocks=10, count=5, hot_weight=1.1),
    ],
)
def test_hotspot_pattern_validation(kwargs):
    with pytest.raises(ValueError):
        hotspot_pattern(**kwargs)
