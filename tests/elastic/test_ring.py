"""S22 ring invariants: uniformity, minimal disruption, determinism.

These are the properties the migration subsystem leans on without
re-checking at runtime: a consistent ring spreads load evenly enough
that resizing is worth it, a same-seed resize moves exactly the
reassigned arcs (the planner's move set, nothing more), and the whole
table is a pure function of ``(kind, partitions, seed, vnodes)`` so
every client in every run routes identically.
"""

import zlib

import pytest

from repro.elastic.plan import plan_resize
from repro.elastic.ring import (
    RING_KINDS,
    ConsistentHashRing,
    ModuloRing,
    hash64,
    make_ring,
)

NAMES = [f"file-{i:05d}" for i in range(2000)]


def loads_for(ring, names=NAMES):
    loads = [0] * ring.partitions
    for name in names:
        loads[ring.partition_of(name)] += 1
    return loads


# ---------------------------------------------------------------------------
# Load uniformity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("partitions", range(1, 9))
def test_consistent_ring_load_uniformity(partitions):
    """Chi-square-ish bound: over 2000 names every partition's share
    stays within [0.5, 1.6]x the fair share at 64 vnodes — measured
    spread across 1-8 partitions is 0.69-1.23x, so these bounds catch a
    broken hash (which collapses to one arc) without flaking on the
    real variance of a 64-vnode ring."""
    ring = ConsistentHashRing(partitions, seed=0)
    loads = loads_for(ring)
    fair = len(NAMES) / partitions
    assert sum(loads) == len(NAMES)
    for partition, load in enumerate(loads):
        assert 0.5 * fair <= load <= 1.6 * fair, (partition, load, fair)


def test_vnodes_tighten_the_spread():
    """More virtual nodes -> flatter ring: the max/fair ratio at 512
    vnodes must beat the ratio at 8 vnodes."""
    coarse = ConsistentHashRing(4, seed=0, vnodes=8)
    fine = ConsistentHashRing(4, seed=0, vnodes=512)
    fair = len(NAMES) / 4
    assert max(loads_for(fine)) / fair < max(loads_for(coarse)) / fair


# ---------------------------------------------------------------------------
# Minimal disruption
# ---------------------------------------------------------------------------


def moved_names(old_ring, new_ring):
    return {
        name for name in NAMES
        if old_ring.partition_of(name) != new_ring.partition_of(name)
    }


@pytest.mark.parametrize("old_k,new_k", [(2, 4), (4, 2), (3, 8), (8, 3)])
def test_minimal_disruption_matches_planner_move_set(old_k, new_k):
    """The set of names whose owner changes is exactly the planner's
    move set, and every move touches an added/removed partition: a grow
    only moves names *to* partitions >= old_k, a shrink only *from*
    partitions >= new_k."""
    old_ring = ConsistentHashRing(old_k, seed=3)
    new_ring = old_ring.with_partitions(new_k)
    plan = plan_resize(old_ring, new_ring, NAMES)
    assert {m.name for m in plan.moves} == moved_names(old_ring, new_ring)
    assert len(plan.moves) + plan.unchanged == len(NAMES)
    for move in plan.moves:
        if new_k > old_k:
            assert move.dst >= old_k, move
        else:
            assert move.src >= new_k, move


def test_disruption_fraction_tracks_the_reassigned_share():
    """Growing k -> k+1 reassigns about 1/(k+1) of the circle; the
    modulo ring by contrast remaps ~4/5 of the namespace (names keep
    their owner only when ``crc32 % 4 == crc32 % 5``)."""
    old_ring = ConsistentHashRing(4, seed=0)
    plan = plan_resize(old_ring, old_ring.with_partitions(5), NAMES)
    assert 0.1 <= plan.disruption <= 0.35  # ideal 0.2
    modulo = plan_resize(ModuloRing(4), ModuloRing(5), NAMES)
    assert modulo.disruption > 2 * plan.disruption


def test_planner_refuses_a_ring_that_shifts_retained_arcs():
    """If a grown ring hands any arc of a retained partition to a
    different retained partition (a vnode-stability bug), names would
    move *between* survivors and the sweep could strand files — the
    planner must refuse such a plan, not pass it to the migrator."""
    old_ring = ConsistentHashRing(2, seed=0)
    bad = old_ring.with_partitions(4)
    # Corrupt the table: collapse the added partitions' points back onto
    # the retained ones, so "moved" names land on partitions < old_k.
    bad._owners = [owner % 2 for owner in bad._owners]
    with pytest.raises(AssertionError, match="minimal-disruption"):
        plan_resize(old_ring, bad, NAMES)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_same_seed_same_table():
    a = ConsistentHashRing(5, seed=11)
    b = ConsistentHashRing(5, seed=11)
    assert [a.partition_of(n) for n in NAMES] == \
        [b.partition_of(n) for n in NAMES]


def test_different_seed_different_table():
    a = ConsistentHashRing(5, seed=11)
    b = ConsistentHashRing(5, seed=12)
    assert [a.partition_of(n) for n in NAMES] != \
        [b.partition_of(n) for n in NAMES]


def test_hash64_is_stable():
    # Frozen values: a silent hash change would remap every elastic
    # namespace on disk-format-equivalent grounds.
    assert hash64("name/file-00000") == 0x379147CB33B99303


def test_plan_is_deterministic_and_sorted():
    old_ring = ConsistentHashRing(2, seed=7)
    new_ring = old_ring.with_partitions(4)
    a = plan_resize(old_ring, new_ring, reversed(NAMES))
    b = plan_resize(old_ring, new_ring, set(NAMES))
    assert a.moves == b.moves
    assert [m.name for m in a.moves] == sorted(m.name for m in a.moves)


# ---------------------------------------------------------------------------
# The legacy ring and the registry
# ---------------------------------------------------------------------------


def test_modulo_ring_is_the_seed_map():
    """ModuloRing == crc32 mod k — the seed routing map, one source of
    truth, byte-identical to the committed baseline."""
    ring = ModuloRing(3)
    for name in NAMES[:64]:
        want = zlib.crc32(name.encode()) % 3
        assert ring.partition_of(name) == want


def test_ring_registry():
    assert set(RING_KINDS) == {"modulo", "consistent"}
    assert isinstance(make_ring("modulo", 3), ModuloRing)
    ring = make_ring("consistent", 4, seed=9, vnodes=16)
    assert (ring.partitions, ring.seed, ring.vnodes) == (4, 9, 16)
    with pytest.raises(ValueError, match="unknown ring kind"):
        make_ring("rendezvous", 4)


@pytest.mark.parametrize("factory", [ModuloRing, ConsistentHashRing])
def test_rings_reject_zero_partitions(factory):
    with pytest.raises(ValueError):
        factory(0)


# ---------------------------------------------------------------------------
# Weighted arcs and targeted shedding (S24)
# ---------------------------------------------------------------------------


def test_default_weights_are_byte_identical_to_unweighted():
    """``weights=None`` and the explicit uniform vector build the same
    table — the S24 surface is invisible until someone uses it."""
    plain = ConsistentHashRing(4, seed=0, vnodes=64)
    explicit = ConsistentHashRing(4, seed=0, vnodes=64, weights=(64,) * 4)
    assert plain._points == explicit._points
    assert plain._owners == explicit._owners
    assert [plain.partition_of(n) for n in NAMES] == \
        [explicit.partition_of(n) for n in NAMES]


def test_weights_shift_arc_share_monotonically():
    """Raising one partition's weight, all else fixed, monotonically
    grows its arc share (and its share of 2000 routed names) —
    deterministically under the fixed seed."""
    shares, loads = [], []
    for weight in (16, 64, 256):
        ring = ConsistentHashRing(4, seed=5, vnodes=64,
                                  weights=(64, weight, 64, 64))
        shares.append(ring.arc_share()[1])
        loads.append(loads_for(ring)[1])
    assert shares == sorted(shares) and shares[0] < shares[-1], shares
    assert loads[0] < loads[-1], loads
    # Same weights, same seed -> same table (pure function).
    again = ConsistentHashRing(4, seed=5, vnodes=64,
                               weights=(64, 256, 64, 64))
    assert again.arc_share()[1] == shares[-1]


def test_with_partitions_preserves_weights_and_drops():
    ring = ConsistentHashRing(3, seed=2, vnodes=32,
                              weights=(32, 48, 16)).shed_arc(1, 7)
    grown = ring.with_partitions(5)
    assert grown.weights == (32, 48, 16, 32, 32)
    assert grown.dropped == frozenset({(1, 7)})
    shrunk = grown.with_partitions(2)
    assert shrunk.weights == (32, 48)
    assert shrunk.dropped == frozenset({(1, 7)})


def test_weight_only_plan_is_minimal_and_targeted():
    """A same-size weight raise moves names only *onto* the raised
    partition, and the planner's arc-precise minimal-disruption check
    accepts the plan (it would refuse any survivor-to-survivor churn)."""
    old_ring = ConsistentHashRing(4, seed=3, vnodes=64)
    new_ring = old_ring.with_weights((64, 64, 128, 64))
    plan = plan_resize(old_ring, new_ring, NAMES)
    assert plan.moves, "raising a weight must attract some arcs"
    assert all(move.dst == 2 for move in plan.moves), plan.moves
    assert {m.name for m in plan.moves} == moved_names(old_ring, new_ring)


def test_shed_arc_moves_exactly_that_arcs_names():
    """Shedding one arc moves exactly the names on it — each to the
    circle successor — and nothing else; re-shedding the same arc
    raises."""
    ring = ConsistentHashRing(4, seed=0, vnodes=64)
    victims = [n for n in NAMES if ring.partition_of(n) == 1]
    arc = ring.vnode_of(victims[0])
    shed = ring.shed_arc(*arc)
    plan = plan_resize(ring, shed, NAMES)
    on_arc = {n for n in NAMES if ring.vnode_of(n) == arc}
    assert {m.name for m in plan.moves} == on_arc
    assert all(move.src == 1 for move in plan.moves)
    with pytest.raises(ValueError):
        shed.shed_arc(*arc)


def test_shed_cannot_strip_a_partition_bare():
    ring = ConsistentHashRing(2, seed=0, vnodes=1)
    with pytest.raises(ValueError, match="no arcs left"):
        ring.shed_arc(0, 0)


def test_arc_share_sums_to_one():
    ring = ConsistentHashRing(5, seed=9, vnodes=32,
                              weights=(32, 8, 64, 32, 16)).shed_arc(2, 3)
    assert abs(sum(ring.arc_share()) - 1.0) < 1e-12
