"""S23 x S22: batched metadata ops against a live resize sweep.

A batch is split against the forwarding net when it arrives at a server
that no longer (or does not yet) own some of its names: local names are
served in place, moved names are chased with singleton ops from a
detached side process.  These tests drive every batched op across a
mid-flight ``resize_fabric`` and assert the safety story: no name is
lost, misrouted, or double-applied; a stale-ring client's batch is
redirected rather than failed; a bad name inside a straddling batch
still settles as a per-name error while its batchmates succeed.
"""

from repro.core import BridgeClient
from repro.elastic.plan import plan_resize
from repro.errors import BridgeFileNotFoundError
from repro.harness.builders import BridgeSystem
from repro.sim import Timeout
from repro.storage import FixedLatency

BLOCKS = 4


def make_elastic(servers=2, provisioned=4, seed=23, **kwargs):
    return BridgeSystem(
        4, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, elastic=provisioned, **kwargs,
    )


def data(name, block):
    return f"{name}/b{block}|".encode()


def populate(system, names):
    client = system.naive_client()

    def body():
        for name in names:
            yield from client.create(name)
            yield from client.write_all(
                name, [data(name, block) for block in range(BLOCKS)]
            )

    system.run(body())
    return client


def owners(system, names):
    return {
        name: [
            index for index, bridge in enumerate(system.bridges)
            if bridge.directory.exists(name)
        ]
        for name in names
    }


def assert_routed_exactly(system, names):
    for name, holders in owners(system, names).items():
        assert holders == [system.fabric.partition_of(name)], (name, holders)


NAMES = [f"bmig-{i:03d}" for i in range(16)]


# ---------------------------------------------------------------------------
# Batched reads under a moving namespace
# ---------------------------------------------------------------------------


def test_batched_stats_survive_a_resize_in_flight():
    """mstat/mopen batches issued continuously while the ring flips and
    the throttled sweep relocates files: every outcome settles ok, with
    the right shape, on every poll."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    polls = []

    def poller():
        client = system.partitioned_client()
        for _ in range(8):
            stats = yield from client.mstat(NAMES)
            opens = yield from client.mopen(NAMES)
            assert [outcome.name for outcome in stats] == NAMES
            for outcome in stats + opens:
                assert outcome.ok, (outcome.name, outcome.error)
                assert outcome.value.total_blocks == BLOCKS
            polls.append(1)
            yield Timeout(0.02)

    def driver():
        system.client_node.spawn(poller(), name="poller")
        return (
            yield from system.resize_fabric(4, moves_per_second=100.0)
        )

    report = system.run(driver())
    assert report.moved == report.planned > 0
    assert len(polls) == 8
    assert_routed_exactly(system, NAMES)


def test_mdelete_mid_sweep_applies_exactly_once():
    """Half the namespace is batch-deleted while the sweep runs: deleted
    names vanish everywhere (not lost, not duplicated, not revived by a
    later move), survivors land exactly where the new ring says, and
    each delete frees its blocks exactly once."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    doomed, kept = NAMES[::2], NAMES[1::2]
    box = []

    def deleter():
        client = system.partitioned_client()
        yield Timeout(0.01)  # after the plan+flip, during the sweep
        outcomes = yield from client.mdelete(doomed)
        box.append(outcomes)

    def driver():
        system.client_node.spawn(deleter(), name="deleter")
        return (
            yield from system.resize_fabric(4, moves_per_second=50.0)
        )

    report = system.run(driver())
    assert report.moved + report.vanished == report.planned
    outcomes = box[0]
    assert all(outcome.ok for outcome in outcomes), [
        (o.name, o.error) for o in outcomes if not o.ok
    ]
    # Exactly once: every delete freed the file's data blocks, and no
    # partition still holds (or re-acquired) a deleted name.
    assert [outcome.value for outcome in outcomes] == [BLOCKS] * len(doomed)
    for name, holders in owners(system, doomed).items():
        assert holders == [], (name, holders)
    assert_routed_exactly(system, kept)


def test_mcreate_mid_sweep_routes_by_the_new_ring():
    system = make_elastic(servers=2)
    populate(system, NAMES)
    fresh = [f"fresh-{i:02d}" for i in range(8)]
    box = []

    def creator():
        client = system.partitioned_client()
        yield Timeout(0.01)
        outcomes = yield from client.mcreate(fresh, width=1)
        box.append(outcomes)

    def driver():
        system.client_node.spawn(creator(), name="creator")
        return (
            yield from system.resize_fabric(4, moves_per_second=50.0)
        )

    system.run(driver())
    assert all(outcome.ok for outcome in box[0])
    assert_routed_exactly(system, NAMES + fresh)


# ---------------------------------------------------------------------------
# The forwarding window: stale batches are chased, not failed
# ---------------------------------------------------------------------------


def test_stale_ring_batch_is_chased_through_the_window():
    """A client still routing by the old ring sends one batch — moved
    names mixed with names that stayed — to the old owner.  The server
    serves the stayers locally and chases the movers through its
    redirects; the client sees one fully-settled batch."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    old_ring = system.fabric.ring
    report = system.run(system.resize_fabric(4, forward_window=None))
    moves = [m for m in report.plan.moves if old_ring.partition_of(m.name) == 0]
    assert moves, "plan moved nothing off partition 0"
    stayed = [name for name in NAMES
              if old_ring.partition_of(name) == 0
              and system.fabric.partition_of(name) == 0]
    batch = [moves[0].name] + stayed + [m.name for m in moves[1:]]

    stale = BridgeClient(system.client_node, system.bridges[0].port)

    def body():
        return (yield from stale.mopen(batch))

    outcomes = system.run(body())
    assert [outcome.name for outcome in outcomes] == batch
    for outcome in outcomes:
        assert outcome.ok, (outcome.name, outcome.error)
        assert outcome.value.total_blocks == BLOCKS
    assert system.bridges[0].forwarded >= len(moves)


def test_straddling_batch_reports_per_name_errors():
    """A stale batch that straddles the window *and* carries a missing
    name: the moved names chase to their new owner, the local names are
    served, and only the missing name settles as an error."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    old_ring = system.fabric.ring
    report = system.run(system.resize_fabric(4, forward_window=None))
    moved = [m.name for m in report.plan.moves
             if old_ring.partition_of(m.name) == 0]
    stayed = [name for name in NAMES
              if old_ring.partition_of(name) == 0
              and system.fabric.partition_of(name) == 0]
    assert moved and stayed
    batch = moved[:1] + ["straddle-missing"] + stayed[:2] + moved[1:2]

    stale = BridgeClient(system.client_node, system.bridges[0].port)

    def body():
        return (yield from stale.mstat(batch))

    outcomes = system.run(body())
    by_name = {outcome.name: outcome for outcome in outcomes}
    assert isinstance(by_name["straddle-missing"].error,
                      BridgeFileNotFoundError)
    for name in batch:
        if name != "straddle-missing":
            assert by_name[name].ok, (name, by_name[name].error)


def test_batched_delete_through_stale_route_frees_once():
    """mdelete sent to the old owner of moved names: the chase deletes
    at the new owner, frees exactly the file's blocks, and leaves no
    replica behind on any partition."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    old_ring = system.fabric.ring
    report = system.run(system.resize_fabric(4, forward_window=None))
    moved = [m.name for m in report.plan.moves
             if old_ring.partition_of(m.name) == 0]
    assert moved

    stale = BridgeClient(system.client_node, system.bridges[0].port)

    def body():
        return (yield from stale.mdelete(moved))

    outcomes = system.run(body())
    for outcome in outcomes:
        assert outcome.ok, (outcome.name, outcome.error)
        assert outcome.value == BLOCKS
    for name, holders in owners(system, moved).items():
        assert holders == [], (name, holders)
