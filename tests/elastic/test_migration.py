"""S22 migration tests: live resizes move files without losing them.

Every test drives a provisioned elastic system (2 active of 4
provisioned servers, or the reverse) through
:meth:`BridgeSystem.resize_fabric` and checks the safety story end to
end: entries land on exactly the partition the new ring names, content
survives byte-for-byte, the double-read forwarding window redirects
requests routed by the old map, removed partitions drain on a shrink,
the throttle actually spaces the sweep, and an elastic-off system never
touches any of it.
"""

import pytest

from repro.core import BridgeClient
from repro.elastic.plan import plan_resize
from repro.elastic.ring import ConsistentHashRing, ModuloRing
from repro.errors import ProcessError
from repro.harness.builders import BridgeSystem
from repro.sim import Timeout
from repro.storage import FixedLatency

BLOCKS = 4


def make_elastic(servers=2, provisioned=4, seed=23, **kwargs):
    return BridgeSystem(
        4, seed=seed, disk_latency=FixedLatency(0.0005),
        bridge_server_count=servers, elastic=provisioned, **kwargs,
    )


def data(name, block):
    return f"{name}/b{block}|".encode()


def populate(system, names):
    client = system.naive_client()

    def body():
        for name in names:
            yield from client.create(name)
            yield from client.write_all(
                name, [data(name, block) for block in range(BLOCKS)]
            )

    system.run(body())
    return client


def owners(system, names):
    table = {}
    for name in names:
        holders = [
            index for index, bridge in enumerate(system.bridges)
            if bridge.directory.exists(name)
        ]
        table[name] = holders
    return table


def assert_routed_exactly(system, names):
    """Every name lives on exactly the partition the live ring names."""
    for name, holders in owners(system, names).items():
        assert holders == [system.fabric.partition_of(name)], (name, holders)


def read_back(system, client, names):
    def body():
        out = {}
        for name in names:
            out[name] = yield from client.read_all(name)
        return out

    contents = system.run(body())
    for name in names:
        got = [chunk[: len(data(name, b))]
               for b, chunk in enumerate(contents[name])]
        assert got == [data(name, b) for b in range(BLOCKS)], name


NAMES = [f"mig-{i:03d}" for i in range(12)]


# ---------------------------------------------------------------------------
# Grow / shrink move the right entries and lose nothing
# ---------------------------------------------------------------------------


def test_grow_relocates_exactly_the_reassigned_names():
    system = make_elastic(servers=2)
    client = populate(system, NAMES)
    before = owners(system, NAMES)
    report = system.run(system.resize_fabric(4))

    assert report.direction == "grow"
    assert (report.old_partitions, report.new_partitions) == (2, 4)
    assert report.planned > 0
    assert report.moved == report.planned and report.vanished == 0
    assert_routed_exactly(system, NAMES)
    # Names the plan left alone never changed hands.
    moved = {m.name for m in report.plan.moves}
    for name in NAMES:
        if name not in moved:
            assert owners(system, NAMES)[name] == before[name]
    read_back(system, client, NAMES)


def test_shrink_drains_the_removed_partitions():
    system = make_elastic(servers=4)
    client = populate(system, NAMES)
    report = system.run(system.resize_fabric(2))

    assert report.direction == "shrink"
    assert report.moved == report.planned > 0
    assert_routed_exactly(system, NAMES)
    for bridge in system.bridges[2:]:
        assert bridge.directory.names() == []
    read_back(system, client, NAMES)


def test_grow_then_shrink_round_trips_the_namespace():
    system = make_elastic(servers=2)
    client = populate(system, NAMES)
    before = owners(system, NAMES)
    system.run(system.resize_fabric(4))
    system.run(system.resize_fabric(2))
    # Same seed, same size -> same ring -> every name back home.
    assert owners(system, NAMES) == before
    read_back(system, client, NAMES)


def test_mid_sweep_delete_counts_as_vanished_not_lost():
    """A name deleted after the plan was cut but before its move runs
    has nothing left to migrate — the sweep records it as vanished and
    carries on."""
    system = make_elastic(servers=2)
    client = populate(system, NAMES)
    # The plan is deterministic (sorted names on the reassigned arcs),
    # so we can predict the sweep's last move and delete it first.
    ring = system.fabric.ring
    doomed = plan_resize(ring, ring.with_partitions(4), NAMES).moves[-1].name
    box = []

    def resizer():
        report = yield from system.resize_fabric(4, moves_per_second=10.0)
        box.append(report)

    def body():
        system.client_node.spawn(resizer(), name="resize")
        yield Timeout(0.01)  # let the plan+flip happen, then delete
        yield from client.delete(doomed)

    system.run(body())
    report = box[0]
    assert report.vanished == 1, report
    assert report.moved == report.planned - 1
    survivors = [name for name in NAMES if name != doomed]
    assert not any(owners(system, [doomed])[doomed])
    assert_routed_exactly(system, survivors)
    read_back(system, client, survivors)


# ---------------------------------------------------------------------------
# The double-read forwarding window
# ---------------------------------------------------------------------------


def test_old_route_is_forwarded_while_the_window_is_open():
    """A request sent to a name's *old* owner (a client still routing by
    the old ring) is redirected by the base server loop, not failed."""
    system = make_elastic(servers=2)
    populate(system, NAMES)
    old_ring = system.fabric.ring
    report = system.run(system.resize_fabric(4, forward_window=None))

    move = report.plan.moves[0]
    stale = BridgeClient(system.client_node,
                         system.bridges[old_ring.partition_of(move.name)].port)

    def body():
        return (yield from stale.read_all(move.name))

    chunks = system.run(body())
    assert chunks[0][: len(data(move.name, 0))] == data(move.name, 0)
    assert system.bridges[move.src].forwarded > 0


def test_forward_window_retires_the_redirects():
    system = make_elastic(servers=2)
    populate(system, NAMES)
    report = system.run(system.resize_fabric(4, forward_window=0.25))
    assert report.planned > 0
    for bridge in system.bridges:
        assert bridge.forward_to == {}


def test_reads_survive_a_resize_in_flight():
    """Clients hammering the fabric while the ring flips and the sweep
    runs never see a failure or a stale byte."""
    system = make_elastic(servers=2)
    populate(system, NAMES)

    def reader(name):
        # One client per reader: a client is one reply mailbox, so
        # concurrent processes must not share one.
        client = system.naive_client()
        for _ in range(6):
            chunks = yield from client.read_all(name)
            for block, chunk in enumerate(chunks):
                assert chunk[: len(data(name, block))] == data(name, block)
            yield Timeout(0.02)

    def driver():
        for name in NAMES:
            system.client_node.spawn(reader(name), name=f"reader-{name}")
        report = yield from system.resize_fabric(4, moves_per_second=100.0)
        return report

    report = system.run(driver())
    assert report.moved == report.planned
    assert_routed_exactly(system, NAMES)


# ---------------------------------------------------------------------------
# Throttle and guard rails
# ---------------------------------------------------------------------------


def test_throttle_spaces_the_sweep():
    system = make_elastic(servers=2)
    populate(system, NAMES)
    report = system.run(
        system.resize_fabric(4, moves_per_second=20.0, forward_window=None)
    )
    assert report.moves_per_second == 20.0
    assert report.duration >= report.planned * (1.0 / 20.0)


def test_resize_beyond_provisioning_is_rejected():
    system = make_elastic(servers=2, provisioned=4)
    populate(system, NAMES[:2])
    with pytest.raises(ProcessError, match="provisioned fabric"):
        system.run(system.resize_fabric(5))


def test_elastic_off_keeps_the_seed_routing():
    system = BridgeSystem(
        4, seed=23, disk_latency=FixedLatency(0.0005), bridge_server_count=2,
    )
    assert system.elastic is False
    assert isinstance(system.fabric.ring, ModuloRing)
    assert len(system.bridges) == 2  # nothing over-provisioned
    for bridge in system.bridges:
        assert bridge.forward_to == {}


def test_elastic_system_routes_by_consistent_hash():
    system = make_elastic(servers=2, seed=23)
    ring = system.fabric.ring
    assert isinstance(ring, ConsistentHashRing)
    assert (ring.partitions, ring.seed) == (2, 23)
    populate(system, NAMES)
    assert_routed_exactly(system, NAMES)
