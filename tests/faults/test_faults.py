"""Tests for fault injection, survival math, and mirroring."""

import pytest

from repro.errors import DeviceFailedError, ProcessError
from repro.faults import (
    FaultInjector,
    MirroredFile,
    files_lost_fraction_interleaved,
    files_lost_fraction_mirrored,
    files_lost_fraction_single_node,
    replication_storage_factor,
    shadow_name,
)
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency
from repro.workloads import build_file, pattern_chunks


def make_system(p=4, seed=61):
    return BridgeSystem(p, seed=seed, disk_latency=FixedLatency(0.0005))


# ---------------------------------------------------------------------------
# Injection mechanics
# ---------------------------------------------------------------------------


def test_fail_slot_breaks_reads_of_interleaved_file():
    system = make_system()
    chunks = pattern_chunks(8)
    build_file(system, "doomed", chunks)
    client = system.naive_client()
    injector = FaultInjector(system)
    # drop caches so reads must touch the device
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    injector.fail_slot(2)

    def body():
        yield from client.open("doomed")  # hits the failed disk

    with pytest.raises(ProcessError) as info:
        system.run(body())
    assert isinstance(info.value.__cause__, DeviceFailedError)


def test_repair_restores_access():
    system = make_system()
    build_file(system, "file", pattern_chunks(8))
    injector = FaultInjector(system)
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    with injector.failed(1):
        assert system.disks[1].failed
    assert not system.disks[1].failed
    client = system.naive_client()

    def body():
        return (yield from client.read_all("file"))

    chunks = system.run(body())
    assert len(chunks) == 8


def test_repair_all_fixes_every_failed_slot():
    system = make_system()
    injector = FaultInjector(system)
    injector.fail_slot(0)
    injector.fail_slot(2)
    assert injector.repair_all() == [0, 2]
    assert injector.failed_slots == []
    assert not any(disk.failed for disk in system.disks)


def test_failed_context_manager_repairs_on_error():
    system = make_system()
    injector = FaultInjector(system)
    with pytest.raises(RuntimeError):
        with injector.failed(3):
            raise RuntimeError("workload blew up")
    assert injector.failed_slots == []
    assert not system.disks[3].failed


def test_injector_notifies_listeners():
    class Recorder:
        def __init__(self):
            self.events = []

        def on_fail(self, slot):
            self.events.append(("fail", slot))

        def on_repair(self, slot):
            self.events.append(("repair", slot))

    system = make_system()
    injector = FaultInjector(system)
    recorder = Recorder()
    injector.add_listener(recorder)
    with injector.failed(2):
        pass
    assert recorder.events == [("fail", 2), ("repair", 2)]
    # the system's redundancy manager is auto-subscribed
    assert system.redundancy.fail_events == 1
    assert system.redundancy.repair_events == 1
    assert not system.redundancy.degraded()


def test_fail_random_eventually_fails_everything():
    system = make_system(4)
    injector = FaultInjector(system)
    slots = {injector.fail_random() for _ in range(4)}
    assert slots == {0, 1, 2, 3}
    with pytest.raises(RuntimeError):
        injector.fail_random()


# ---------------------------------------------------------------------------
# Survival math
# ---------------------------------------------------------------------------


def test_interleaved_loses_everything():
    assert files_lost_fraction_interleaved(32, 1) == 1.0
    assert files_lost_fraction_interleaved(32, 0) == 0.0


def test_single_node_files_lose_fractionally():
    assert files_lost_fraction_single_node(32, 1) == pytest.approx(1 / 32)
    assert files_lost_fraction_single_node(4, 2) == pytest.approx(0.5)
    assert files_lost_fraction_single_node(4, 9) == 1.0


def test_mirrored_survives_single_failure():
    assert files_lost_fraction_mirrored(8, 1) == 0.0
    assert files_lost_fraction_mirrored(8, 2) == pytest.approx(2 / 7)
    assert replication_storage_factor() == 2.0


# ---------------------------------------------------------------------------
# Mirroring end to end
# ---------------------------------------------------------------------------


def test_mirrored_file_survives_one_disk_failure():
    system = make_system(4)
    mirrored = MirroredFile(system, "precious")
    chunks = pattern_chunks(8)

    def setup():
        yield from mirrored.create()
        yield from mirrored.write_all(chunks)

    system.run(setup())
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()

    def read():
        return (yield from mirrored.read_all())

    with FaultInjector(system).failed(1):
        recovered, stats = system.run(read())
    assert len(recovered) == 8
    for original, copy in zip(chunks, recovered):
        assert copy.startswith(original)
    assert stats.fallbacks == 2  # slot 1 held blocks 1 and 5 of 8
    assert stats.blocks == 8


def test_mirrored_storage_costs_double():
    system = make_system(4)
    mirrored = MirroredFile(system, "costly")

    def body():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(6))
        return (yield from mirrored.storage_blocks())

    assert system.run(body()) == 12


def test_mirrored_copies_on_distinct_nodes():
    """Block n's home is slot n mod p; its shadow is slot (n+1) mod p."""
    system = make_system(4)
    mirrored = MirroredFile(system, "placed")

    def body():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(4))
        client = system.naive_client()
        home = yield from client.open("placed")
        shadow = yield from client.open(shadow_name("placed"))
        return home, shadow

    home, shadow = system.run(body())
    assert home.start == 0
    assert shadow.start == 1
    imap_home = home.interleave
    imap_shadow = shadow.interleave
    for block in range(4):
        assert imap_home.slot_of(block) != imap_shadow.slot_of(block)


def test_unmirrored_file_dies_where_mirrored_survives():
    system = make_system(4)
    build_file(system, "naked", pattern_chunks(8))
    mirrored = MirroredFile(system, "armored")

    def setup():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(8))

    system.run(setup())
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    FaultInjector(system).fail_slot(0)

    client = system.naive_client()

    def read_naked():
        chunks = []
        for block in range(8):
            chunks.append((yield from client.random_read("naked", block)))
        return chunks

    with pytest.raises(ProcessError) as info:
        system.run(read_naked())
    assert isinstance(info.value.__cause__, DeviceFailedError)

    def read_armored():
        return (yield from mirrored.read_all())

    recovered, _stats = system.run(read_armored())
    assert len(recovered) == 8


def test_mirroring_requires_width_two():
    system = BridgeSystem(1, seed=1)
    with pytest.raises(ValueError):
        MirroredFile(system, "x")
