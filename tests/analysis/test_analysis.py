"""Tests for metrics, paper models, fitting, and table formatting."""

import pytest

from repro.analysis import (
    PAPER_FILE_BLOCKS,
    PAPER_TABLE3_COPY_SECONDS,
    PAPER_TABLE4_SORT_MINUTES,
    crossover_point,
    efficiency,
    fit_line,
    format_markdown_table,
    format_series,
    format_table,
    is_superlinear,
    scaling_table,
    shape_ratio,
    speedup,
    speedup_series,
)
from repro.tools.sort import SortCostModel


# ---------------------------------------------------------------------------
# Paper constants
# ---------------------------------------------------------------------------


def test_paper_file_blocks():
    assert PAPER_FILE_BLOCKS == 10922


def test_paper_table3_is_nearly_linear():
    series = speedup_series(PAPER_TABLE3_COPY_SECONDS)
    assert series[2] == 1.0
    assert series[32] == pytest.approx(311.6 / 21.6)
    # 16x more processors, >14x speedup
    assert series[32] > 14.0


def test_paper_table4_local_sort_superlinear():
    local = {p: row[0] for p, row in PAPER_TABLE4_SORT_MINUTES.items()}
    assert is_superlinear(local)


def test_paper_table4_merge_modest():
    merge = {p: row[1] for p, row in PAPER_TABLE4_SORT_MINUTES.items()}
    assert not is_superlinear(merge)
    series = speedup_series(merge)
    assert series[32] < 4.0  # 17 -> 4.45 min: only ~3.8x over 16x procs


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_speedup_and_efficiency():
    assert speedup(100.0, 25.0) == 4.0
    assert efficiency(100.0, 2, 25.0, 8) == pytest.approx(1.0)
    assert efficiency(100.0, 2, 50.0, 8) == pytest.approx(0.5)


def test_efficiency_validates_processors():
    with pytest.raises(ValueError):
        efficiency(1.0, 0, 1.0, 4)


def test_scaling_table():
    points = scaling_table({2: 100.0, 4: 50.0, 8: 30.0}, units=1000)
    assert [p.p for p in points] == [2, 4, 8]
    assert points[0].speedup == 1.0
    assert points[1].speedup == 2.0
    assert points[1].efficiency == pytest.approx(1.0)
    assert points[2].throughput == pytest.approx(1000 / 30.0)
    assert scaling_table({}, 10) == []


def test_is_superlinear():
    assert is_superlinear({2: 100.0, 4: 40.0, 8: 15.0})
    assert not is_superlinear({2: 100.0, 4: 60.0})


def test_crossover_point():
    a = {1: 10.0, 2: 6.0, 4: 3.0}
    b = {1: 5.0, 2: 5.0, 4: 5.0}
    assert crossover_point(a, b) == 4
    assert crossover_point(b, a) == 1
    assert crossover_point({1: 9.0}, {1: 2.0}) is None


def test_fit_line():
    intercept, slope = fit_line([2, 4, 8, 16], [145 + 17.5 * p for p in (2, 4, 8, 16)])
    assert intercept == pytest.approx(145.0)
    assert slope == pytest.approx(17.5)


def test_fit_line_validations():
    with pytest.raises(ValueError):
        fit_line([1], [2])
    with pytest.raises(ValueError):
        fit_line([3, 3], [1, 2])


def test_shape_ratio_flat_for_scaled_series():
    paper = {2: 100.0, 4: 50.0, 8: 25.0}
    measured = {p: v * 0.3 for p, v in paper.items()}
    ratios = shape_ratio(measured, paper)
    assert all(r == pytest.approx(0.3) for r in ratios.values())


# ---------------------------------------------------------------------------
# Sort cost model
# ---------------------------------------------------------------------------


def test_sort_model_local_passes():
    model = SortCostModel()
    assert model.local_merge_passes(5461, 512) == 4
    assert model.local_merge_passes(341, 512) == 0


def test_sort_model_local_superlinear_shape():
    model = SortCostModel()
    times = {
        p: model.local_sort_time(10922, p, 512) for p in (2, 4, 8, 16, 32)
    }
    assert is_superlinear(times, slack=1.0)


def test_sort_model_merge_decreases_with_width():
    model = SortCostModel()
    times = {p: model.merge_phase_time(10922, p) for p in (2, 4, 8, 16, 32)}
    assert times[2] > times[8] > times[32]
    # but far from linearly
    assert times[2] / times[32] < 16


def test_sort_model_saturation_width():
    model = SortCostModel(write_time=0.036, token_hop_time=0.003)
    assert model.saturation_width() == pytest.approx(12.0)


def test_sort_model_zero_records():
    model = SortCostModel()
    assert model.run_formation_time(0, 512) == 0.0
    assert model.merge_phase_time(100, 1) == 0.0


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def test_format_table_basic():
    text = format_table(
        ["p", "time"], [[2, 311.6], [32, 21.6]], title="Copy"
    )
    lines = text.splitlines()
    assert lines[0] == "Copy"
    assert "311.6" in text
    assert "21.6" in text
    assert lines[2].startswith("-")


def test_format_table_aligns_columns():
    text = format_table(["a"], [[1000000.0]])
    assert "1,000,000" in text


def test_format_markdown_table():
    text = format_markdown_table(["p", "s"], [[2, 1.5]])
    lines = text.splitlines()
    assert lines[0] == "| p | s |"
    assert lines[1] == "|---|---|"
    assert "| 2 | 1.5 |" in lines[2]


def test_format_series():
    text = format_series("copy", {2: 311.6, 4: 156.0}, unit="s")
    assert "p=2: 311.6s" in text
    assert "p=4: 156.0s" in text


# ---------------------------------------------------------------------------
# Copy cost model
# ---------------------------------------------------------------------------


def test_copy_model_shape():
    from repro.analysis.models import copy_time_model

    times = {p: copy_time_model(10922, p) for p in (2, 4, 8, 16, 32)}
    # near-linear until startup terms matter
    assert times[2] / times[4] > 1.9
    assert times[16] / times[32] > 1.5
    with pytest.raises(ValueError):
        copy_time_model(100, 0)


def test_copy_model_tracks_measurement():
    """The closed form must land within 2x of a simulated run."""
    from repro.analysis.models import copy_time_model
    from repro.harness.experiments import run_copy_experiment

    run = run_copy_experiment(4, blocks=256)
    predicted = copy_time_model(256, 4)
    assert predicted / 2 < run.elapsed < predicted * 2


# ---------------------------------------------------------------------------
# Report generation
# ---------------------------------------------------------------------------


def test_build_report_renders_all_sections():
    from repro.analysis.report import build_report

    report = build_report(ps=(2, 4), blocks=64, records=64)
    assert report.startswith("# Bridge reproduction report")
    assert "## Table 2: basic operations" in report
    assert "## Table 3: copy tool" in report
    assert "## Table 4: merge sort tool" in report
    assert "## Redundancy schemes (p=4)" in report
    assert "Create fit:" in report
    # markdown tables present
    assert report.count("|---|") >= 4


def test_cache_section_reports_counters():
    from repro.analysis.report import cache_section
    from repro.harness.builders import BridgeSystem
    from repro.workloads import build_file, pattern_chunks

    system = BridgeSystem(4, seed=7)
    build_file(system, "traffic", pattern_chunks(8))
    section = cache_section(system)
    assert "## Block cache" in section
    for header in ("hits", "misses", "hit rate", "evictions", "writebacks"):
        assert header in section
    # one row per LFS plus the totals row
    assert section.count("\n|") >= 4 + 2


def test_redundancy_section_covers_all_schemes():
    from repro.analysis.report import redundancy_section

    section = redundancy_section(p=4, blocks=8)
    for scheme in ("none", "mirror", "parity"):
        assert scheme in section
    assert "cache hits" in section


def test_build_report_validates_ps():
    from repro.analysis.report import build_report

    with pytest.raises(ValueError):
        build_report(ps=())


# ---------------------------------------------------------------------------
# S23: batched metadata RPC model
# ---------------------------------------------------------------------------


def test_metadata_buckets_cover_every_name():
    from repro.analysis import metadata_partition_buckets

    names = [f"m-{i}" for i in range(40)]
    buckets = metadata_partition_buckets(names, 4)
    assert sum(buckets.values()) == len(names)
    assert set(buckets) <= {0, 1, 2, 3}
    # single partition: everything lands in bucket 0
    assert metadata_partition_buckets(names, 1) == {0: len(names)}


def test_metadata_buckets_follow_a_custom_ring():
    from repro.analysis import metadata_partition_buckets
    from repro.elastic.ring import ConsistentHashRing

    names = [f"m-{i}" for i in range(24)]
    ring = ConsistentHashRing(3, seed=9)
    buckets = metadata_partition_buckets(names, 3, ring=ring)
    expected = {}
    for name in names:
        partition = ring.partition_of(name)
        expected[partition] = expected.get(partition, 0) + 1
    assert buckets == expected


def test_batched_rpc_count_windows():
    import math

    from repro.analysis import batched_rpc_count, metadata_partition_buckets

    names = [f"m-{i}" for i in range(50)]
    buckets = metadata_partition_buckets(names, 4)
    # window 0 = unbounded: one RPC per touched partition
    assert batched_rpc_count(names, 4, window=0) == len(buckets)
    for window in (1, 3, 7, 16, 100):
        assert batched_rpc_count(names, 4, window=window) == sum(
            math.ceil(count / window) for count in buckets.values()
        )
    # window 1 degenerates to the per-name count
    assert batched_rpc_count(names, 4, window=1) == len(names)


def test_metadata_rpc_counts_package():
    from repro.analysis import metadata_rpc_counts

    names = [f"m-{i}" for i in range(12)]
    counts = metadata_rpc_counts(names, 2, window=5)
    assert counts["per_name"] == 12
    assert counts["partitions_touched"] <= 2
    assert counts["batched"] <= counts["per_name"]


def test_metadata_model_validates_arguments():
    from repro.analysis import batched_rpc_count, metadata_partition_buckets

    with pytest.raises(ValueError):
        metadata_partition_buckets(["x"], 0)
    with pytest.raises(ValueError):
        batched_rpc_count(["x"], 2, window=-1)
