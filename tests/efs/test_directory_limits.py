"""Capacity and failure-path tests for EFS: directory bucket overflow,
out-of-space behavior, and directory persistence on the device."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.efs import EFSClient, EFSServer
from repro.efs.directory import _ENTRIES_PER_BUCKET
from repro.errors import EFSOutOfSpaceError
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import DiskParameters, FixedLatency, SimulatedDisk


def make_efs(capacity_blocks=2048, buckets=64):
    sim = Simulator(seed=121)
    machine = Machine(sim, 1, config=DEFAULT_CONFIG)
    node = machine.node(0)
    disk = SimulatedDisk(
        sim,
        DiskParameters(name="d", capacity_blocks=capacity_blocks),
        FixedLatency(1e-4),
    )
    server = EFSServer(node, disk, DEFAULT_CONFIG, directory_buckets=buckets)
    client = EFSClient(node, server.port)
    return sim, server, client


def numbers_for_bucket(server, bucket, count):
    """File numbers that all hash into the same directory bucket."""
    found = []
    number = 0
    while len(found) < count:
        if server.directory.bucket_of(number) == bucket:
            found.append(number)
        number += 1
    return found


def test_entries_per_bucket_constant():
    assert _ENTRIES_PER_BUCKET == 32  # 1024 / 32-byte entries


def test_bucket_overflow_raises():
    sim, server, client = make_efs()
    numbers = numbers_for_bucket(server, 0, _ENTRIES_PER_BUCKET + 1)

    def body():
        for number in numbers[:-1]:
            yield from client.create(number)
        try:
            yield from client.create(numbers[-1])
        except EFSOutOfSpaceError as exc:
            return "bucket" in str(exc)

    assert sim.run_process(body()) is True


def test_bucket_frees_slots_after_delete():
    sim, server, client = make_efs()
    numbers = numbers_for_bucket(server, 3, _ENTRIES_PER_BUCKET + 1)

    def body():
        for number in numbers[:-1]:
            yield from client.create(number)
        yield from client.delete(numbers[0])
        yield from client.create(numbers[-1])  # now fits
        return (yield from client.exists(numbers[-1]))

    assert sim.run_process(body()) is True


def test_disk_full_raises_and_recovers():
    # 64 directory buckets + 4 data blocks only
    sim, server, client = make_efs(capacity_blocks=68)

    def body():
        yield from client.create(1)
        for _ in range(4):
            yield from client.append(1, b"x")
        try:
            yield from client.append(1, b"one too many")
        except EFSOutOfSpaceError:
            pass
        else:
            return "no error"
        # deleting frees space again
        yield from client.delete(1)
        yield from client.create(2)
        yield from client.append(2, b"fits now")
        result = yield from client.read(2, 0)
        return result.data[:8]

    assert sim.run_process(body()) == b"fits now"


def test_directory_survives_cache_wipe():
    """Directory entries live on the device: dropping every cached block
    must not lose files."""
    sim, server, client = make_efs()

    def setup():
        yield from client.create(42)
        yield from client.append(42, b"persistent")
        yield from client.flush()

    sim.run_process(setup())
    server.cache.invalidate_all()

    def body():
        result = yield from client.read(42, 0)
        return result.data[:10]

    assert sim.run_process(body()) == b"persistent"


def test_many_files_across_buckets():
    sim, server, client = make_efs(capacity_blocks=4096, buckets=16)

    def body():
        for number in range(200):
            yield from client.create(number)
        listing = yield from client.list_files()
        return listing

    listing = sim.run_process(body())
    assert listing == list(range(200))


def test_custom_bucket_count_shifts_data_region():
    _sim, server, _client = make_efs(buckets=8)
    assert server.directory.first_data_block == 8
    assert server.freelist.start == 8
