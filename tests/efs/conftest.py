"""Shared fixtures for EFS tests: a single-node machine with one LFS."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.efs import EFSClient, EFSServer
from repro.machine import Machine
from repro.sim import Simulator
from repro.storage import FixedLatency, make_driver


class EFSHarness:
    """One node, one disk, one EFS server, one client on the same node.

    ``storage`` is any S25 driver spec (``None`` = the ram reference
    driver); the driver-parameterized suites pass ``"hostfs"`` /
    ``"object"`` specs to run the same semantics against every backend.
    """

    def __init__(self, capacity_blocks=2048, access_time=0.015, config=None,
                 storage=None):
        self.config = config or DEFAULT_CONFIG
        self.sim = Simulator(seed=13)
        self.machine = Machine(self.sim, 1, config=self.config)
        self.node = self.machine.node(0)
        self.disk = make_driver(
            storage, self.sim, name="lfs-disk",
            capacity_blocks=capacity_blocks,
            default_latency=FixedLatency(access_time),
        )
        self.server = EFSServer(self.node, self.disk, self.config)
        self.client = EFSClient(self.node, self.server.port)

    def run(self, generator):
        return self.sim.run_process(generator)


@pytest.fixture
def efs():
    return EFSHarness()


@pytest.fixture
def fast_efs():
    """Near-zero disk latency: for pure-semantics tests that do many ops."""
    return EFSHarness(access_time=0.0001)
