"""Tests for the write-behind extension (section 6's assumption)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.efs.fsck import check_efs
from tests.efs.conftest import EFSHarness


def make(write_behind=True, access_time=0.015):
    config = DEFAULT_CONFIG.with_changes(efs_write_behind=write_behind)
    return EFSHarness(access_time=access_time, config=config)


def test_write_behind_roundtrip():
    efs = make()

    def body():
        yield from efs.client.create(1)
        for index in range(8):
            yield from efs.client.append(1, b"wb-%d" % index)
        chunks = yield from efs.client.read_file(1)
        return chunks

    chunks = efs.run(body())
    assert [c[:4] for c in chunks] == [b"wb-%d" % i for i in range(8)]


def test_write_behind_appends_much_cheaper():
    def append_cost(write_behind):
        efs = make(write_behind=write_behind)

        def body():
            yield from efs.client.create(1)
            yield from efs.client.append(1, b"warm")
            yield from efs.client.append(1, b"warm")
            start = efs.sim.now
            for _ in range(10):
                yield from efs.client.append(1, b"x")
            return (efs.sim.now - start) / 10

        return efs.run(body())

    behind = append_cost(True)
    through = append_cost(False)
    assert through > 0.030       # write-through: two device writes
    assert behind < through / 3  # write-behind: cache-speed appends


def test_write_behind_flush_persists_to_device():
    efs = make()

    def body():
        yield from efs.client.create(2)
        for _ in range(4):
            yield from efs.client.append(2, b"durable")
        writes_before_flush = efs.disk.writes
        yield from efs.client.flush()
        return writes_before_flush, efs.disk.writes

    before, after = efs.run(body())
    assert before < after  # the flush did the deferred device writes
    report = check_efs(efs.server)
    assert report.clean, report.errors


def test_write_behind_delete_sees_unflushed_blocks():
    efs = make()

    def body():
        yield from efs.client.create(3)
        for _ in range(5):
            yield from efs.client.append(3, b"gone soon")
        freed = yield from efs.client.delete(3)  # no flush in between
        return freed

    assert efs.run(body()) == 5
    report = check_efs(efs.server)
    assert report.clean, report.errors


def test_write_behind_overwrite_in_place():
    efs = make()

    def body():
        yield from efs.client.create(4)
        for _ in range(3):
            yield from efs.client.append(4, b"v1")
        yield from efs.client.write(4, 1, b"v2")
        chunks = yield from efs.client.read_file(4)
        return chunks

    chunks = efs.run(body())
    assert chunks[1][:2] == b"v2"
    assert chunks[0][:2] == b"v1"


def test_write_behind_fsck_clean_after_churn():
    efs = make(access_time=0.0005)

    def body():
        for number in (1, 2, 3):
            yield from efs.client.create(number)
            for i in range(6):
                yield from efs.client.append(number, b"c%d" % i)
        yield from efs.client.delete(2)

    efs.run(body())
    report = check_efs(efs.server)
    assert report.clean, report.errors
