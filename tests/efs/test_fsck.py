"""Tests for the EFS consistency checker — and, through it, for the
on-disk invariants of every mutating operation."""

import pytest

from repro.efs.fsck import check_efs, check_system
from repro.efs.layout import BridgeHeader, EFSHeader, pack_block
from tests.efs.conftest import EFSHarness


def run_ops(efs, body):
    efs.run(body())
    return check_efs(efs.server)


def test_clean_after_creates_and_appends(fast_efs):
    def body():
        for number in (1, 2, 3):
            yield from fast_efs.client.create(number)
            for i in range(5):
                yield from fast_efs.client.append(number, b"x%d" % i)

    report = run_ops(fast_efs, body)
    assert report.clean, report.errors
    assert report.files_checked == 3
    assert report.blocks_checked == 15


def test_clean_after_deletes(fast_efs):
    def body():
        for number in (1, 2):
            yield from fast_efs.client.create(number)
            for _ in range(4):
                yield from fast_efs.client.append(number, b"d")
        yield from fast_efs.client.delete(1)

    report = run_ops(fast_efs, body)
    assert report.clean, report.errors
    assert report.files_checked == 1


def test_clean_after_overwrites(fast_efs):
    def body():
        yield from fast_efs.client.create(9)
        for i in range(6):
            yield from fast_efs.client.append(9, b"v1")
        for i in (0, 3, 5):
            yield from fast_efs.client.write(9, i, b"v2")

    report = run_ops(fast_efs, body)
    assert report.clean, report.errors


def test_clean_after_interleaved_churn(fast_efs):
    """Create/append/delete churn across files must leave no orphans."""

    def body():
        for round_index in range(3):
            for number in range(4):
                yield from fast_efs.client.create(100 + number)
                for i in range(round_index + 2):
                    yield from fast_efs.client.append(100 + number, b"c")
            for number in range(0, 4, 2):
                yield from fast_efs.client.delete(100 + number)
            for number in range(1, 4, 2):
                yield from fast_efs.client.delete(100 + number)

    report = run_ops(fast_efs, body)
    assert report.clean, report.errors


def test_detects_corrupted_link():
    efs = EFSHarness(access_time=0.0001)

    def body():
        yield from efs.client.create(5)
        for _ in range(4):
            yield from efs.client.append(5, b"ok")
        yield from efs.client.flush()

    efs.run(body())
    # find the head and smash its next pointer on the raw device
    report_before = check_efs(efs.server)
    assert report_before.clean

    def corrupt():
        info = yield from efs.client.info(5)
        return info.head_addr

    head = efs.run(corrupt())
    from repro.efs.layout import unpack_block

    header, bridge, data = unpack_block(efs.disk.blocks[head])
    header.next_addr = head  # short-circuit the list
    efs.disk.blocks[head] = pack_block(header, bridge, data[:10])
    efs.server.cache.invalidate_all()

    report = check_efs(efs.server)
    assert not report.clean
    assert any("unreachable" in e or "prev" in e for e in report.errors)


def test_detects_cross_file_claim():
    efs = EFSHarness(access_time=0.0001)

    def body():
        yield from efs.client.create(1)
        yield from efs.client.append(1, b"mine")
        yield from efs.client.flush()

    efs.run(body())

    def find_head():
        info = yield from efs.client.info(1)
        return info.head_addr

    head = efs.run(find_head())
    # forge the block to claim it belongs to file 2
    from repro.efs.layout import unpack_block

    header, bridge, data = unpack_block(efs.disk.blocks[head])
    header.file_number = 2
    efs.disk.blocks[head] = pack_block(header, bridge, data[:10])
    efs.server.cache.invalidate_all()

    report = check_efs(efs.server)
    assert not report.clean
    assert any("owned by" in e for e in report.errors)


def test_detects_orphan_block():
    efs = EFSHarness(access_time=0.0001)

    def body():
        yield from efs.client.create(1)
        yield from efs.client.append(1, b"a")

    efs.run(body())
    # leak an allocation
    efs.server.freelist.allocate()
    report = check_efs(efs.server)
    assert not report.clean
    assert any("unreachable" in e for e in report.errors)


def test_sees_through_dirty_cache(fast_efs):
    """Blocks still dirty in the cache (head back-pointers) must not be
    reported as inconsistencies: the checker sees the post-write-back
    image."""

    def body():
        yield from fast_efs.client.create(7)
        for _ in range(6):
            yield from fast_efs.client.append(7, b"w")
        # no flush: head prev-pointer updates are still dirty

    report = run_ops(fast_efs, body)
    assert report.clean, report.errors


def test_check_system_covers_all_lfs():
    from repro.harness.builders import BridgeSystem
    from repro.storage import FixedLatency
    from repro.workloads import build_file, pattern_chunks

    system = BridgeSystem(4, seed=111, disk_latency=FixedLatency(0.0005))
    build_file(system, "spread", pattern_chunks(10))
    reports = check_system(system)
    assert len(reports) == 4
    assert all(r.clean for r in reports)
    assert sum(r.blocks_checked for r in reports) == 10


def test_clean_after_full_sort_workload():
    """The heaviest mutator we have: the sort tool's scratch churn must
    leave every LFS structurally clean."""
    from repro.harness.builders import BridgeSystem
    from repro.storage import FixedLatency
    from repro.tools import SortTool
    from repro.workloads import build_record_file, uniform_keys

    system = BridgeSystem(4, seed=113, disk_latency=FixedLatency(0.0005))
    build_record_file(system, "u", uniform_keys(32, seed=7))
    tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("u", "s"))

    system.run(body())
    for report in check_system(system):
        assert report.clean, report.errors


# ---------------------------------------------------------------------------
# S25: the same structural invariants against every registered driver
# ---------------------------------------------------------------------------


ALL_DRIVER_KINDS = ("ram", "hostfs", "object")


def _driver_spec(kind, tmp_path):
    if kind == "hostfs":
        return {"kind": "hostfs", "root": tmp_path}
    return kind


@pytest.fixture(params=ALL_DRIVER_KINDS)
def driver_efs(request, tmp_path):
    spec = _driver_spec(request.param, tmp_path)
    return EFSHarness(access_time=0.0001, storage=spec)


def test_clean_after_churn_on_every_driver(driver_efs):
    """Create/append/delete churn leaves a clean EFS on every backend."""
    efs = driver_efs

    def body():
        for number in range(1, 5):
            yield from efs.client.create(number)
            for i in range(number):
                yield from efs.client.append(number, b"x%d" % i)
        yield from efs.client.delete(2)
        yield from efs.client.flush()

    efs.run(body())
    report = check_efs(efs.server)
    assert report.clean, report.errors
    assert report.files_checked == 3


def test_detects_corruption_on_every_driver(driver_efs):
    """The fsck corruption probe pokes ``disk.blocks`` directly — the
    driver contract requires a mutable block mapping on every backend."""
    efs = driver_efs

    def body():
        yield from efs.client.create(5)
        for _ in range(4):
            yield from efs.client.append(5, b"ok")
        yield from efs.client.flush()

    efs.run(body())
    assert check_efs(efs.server).clean

    def find_head():
        info = yield from efs.client.info(5)
        return info.head_addr

    head = efs.run(find_head())
    from repro.efs.layout import unpack_block

    header, bridge, data = unpack_block(efs.disk.blocks[head])
    header.next_addr = head  # short-circuit the list
    efs.disk.blocks[head] = pack_block(header, bridge, data[:10])
    efs.server.cache.invalidate_all()

    report = check_efs(efs.server)
    assert not report.clean
