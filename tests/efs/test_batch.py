"""Batched EFS operations: read_blocks / write_blocks (list I/O, S17)."""

from repro.config import DATA_BYTES_PER_BLOCK
from repro.errors import EFSBlockNotFoundError, EFSFileNotFoundError


def chunk(index):
    return (f"blk-{index}-".encode() * 160)[:DATA_BYTES_PER_BLOCK]


def pad(data):
    """EFS data areas come back zero-padded to the full 960 bytes."""
    return data.ljust(DATA_BYTES_PER_BLOCK, b"\x00")


def build(harness, file_number, blocks):
    def body():
        yield from harness.client.create(file_number)
        for index in range(blocks):
            yield from harness.client.append(file_number, chunk(index))

    harness.run(body())


# ---------------------------------------------------------------------------
# read_blocks
# ---------------------------------------------------------------------------


def test_read_blocks_request_order_preserved(fast_efs):
    build(fast_efs, 1, 8)

    def body():
        return (yield from fast_efs.client.read_blocks(1, [5, 0, 3]))

    batch = fast_efs.run(body())
    assert [r.block_number for r in batch.results] == [5, 0, 3]
    assert batch.data == [chunk(5), chunk(0), chunk(3)]


def test_read_blocks_duplicates_served_once_returned_twice(fast_efs):
    build(fast_efs, 1, 4)

    def body():
        return (yield from fast_efs.client.read_blocks(1, [2, 2, 0]))

    batch = fast_efs.run(body())
    assert batch.data == [chunk(2), chunk(2), chunk(0)]


def test_read_blocks_is_one_request(fast_efs):
    build(fast_efs, 1, 16)
    before = fast_efs.server.requests_served

    def body():
        return (yield from fast_efs.client.read_blocks(1, list(range(16))))

    batch = fast_efs.run(body())
    assert fast_efs.server.requests_served - before == 1
    assert len(batch.results) == 16


def test_read_blocks_hint_reuse_across_batch(fast_efs):
    """A fresh sequential file is one contiguous run: after the first
    lookup every subsequent block is found through the threaded hint."""
    build(fast_efs, 1, 12)

    def body():
        info = yield from fast_efs.client.info(1)
        return (
            yield from fast_efs.client.read_blocks(
                1, list(range(12)), hint=info.head_addr
            )
        )

    batch = fast_efs.run(body())
    assert batch.hint_hits == 12
    assert batch.runs == 1  # contiguous allocation -> one run


def test_read_blocks_runs_count_gaps(fast_efs):
    build(fast_efs, 1, 12)

    def body():
        # 0,1 contiguous; 6; 10 — three runs after ascending sort.
        return (yield from fast_efs.client.read_blocks(1, [10, 0, 1, 6]))

    assert fast_efs.run(body()).runs == 3


def test_read_blocks_empty_list(fast_efs):
    build(fast_efs, 1, 2)

    def body():
        return (yield from fast_efs.client.read_blocks(1, []))

    batch = fast_efs.run(body())
    assert batch.results == []


def test_read_blocks_unknown_file(fast_efs):
    def body():
        try:
            yield from fast_efs.client.read_blocks(404, [0])
        except EFSFileNotFoundError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


def test_read_blocks_past_end(fast_efs):
    build(fast_efs, 1, 4)

    def body():
        try:
            yield from fast_efs.client.read_blocks(1, [0, 4])
        except EFSBlockNotFoundError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


def test_read_blocks_cheaper_than_single_reads(efs):
    """The batch pays one request-decode charge instead of n."""
    build(efs, 1, 8)
    build(efs, 2, 8)

    def singles():
        start = efs.sim.now
        hint = None
        for block in range(8):
            result = yield from efs.client.read(1, block, hint=hint)
            hint = result.next_addr
        return efs.sim.now - start

    def batched():
        start = efs.sim.now
        yield from efs.client.read_blocks(2, list(range(8)))
        return efs.sim.now - start

    single_time = efs.run(singles())
    batch_time = efs.run(batched())
    assert batch_time < single_time


# ---------------------------------------------------------------------------
# write_blocks
# ---------------------------------------------------------------------------


def test_write_blocks_in_place_and_append(fast_efs):
    build(fast_efs, 1, 4)

    def body():
        batch = yield from fast_efs.client.write_blocks(
            1, [(1, b"one"), (4, b"four"), (5, b"five")]
        )
        data = yield from fast_efs.client.read_blocks(1, [1, 4, 5])
        return batch, data

    batch, data = fast_efs.run(body())
    assert batch.appended == 2
    assert [r.block_number for r in batch.results] == [1, 4, 5]
    assert data.data == [pad(b"one"), pad(b"four"), pad(b"five")]


def test_write_blocks_is_one_request(fast_efs):
    build(fast_efs, 1, 2)
    before = fast_efs.server.requests_served

    def body():
        yield from fast_efs.client.write_blocks(
            1, [(block, chunk(block)) for block in range(2, 10)]
        )

    fast_efs.run(body())
    assert fast_efs.server.requests_served - before == 1


def test_write_blocks_duplicate_last_value_wins(fast_efs):
    build(fast_efs, 1, 4)

    def body():
        yield from fast_efs.client.write_blocks(
            1, [(2, b"first"), (2, b"second")]
        )
        return (yield from fast_efs.client.read_blocks(1, [2]))

    assert fast_efs.run(body()).data == [pad(b"second")]


def test_write_blocks_rejects_sparse(fast_efs):
    build(fast_efs, 1, 4)

    def body():
        try:
            yield from fast_efs.client.write_blocks(1, [(6, b"hole")])
        except EFSBlockNotFoundError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


def test_write_blocks_rejects_oversized_data(fast_efs):
    build(fast_efs, 1, 1)

    def body():
        try:
            yield from fast_efs.client.write_blocks(
                1, [(0, b"x" * (DATA_BYTES_PER_BLOCK + 1))]
            )
        except ValueError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


def test_write_blocks_empty_list(fast_efs):
    build(fast_efs, 1, 1)

    def body():
        return (yield from fast_efs.client.write_blocks(1, []))

    batch = fast_efs.run(body())
    assert batch.results == []
    assert batch.appended == 0


def test_write_blocks_mixed_order_applies_ascending(fast_efs):
    """Appends mixed with updates in any request order still succeed:
    writes apply in ascending block order, so the dense append run at
    the end of the file lands before higher blocks are touched."""
    build(fast_efs, 1, 3)

    def body():
        yield from fast_efs.client.write_blocks(
            1, [(4, b"later"), (3, b"earlier"), (0, b"update")]
        )
        return (yield from fast_efs.client.read_blocks(1, [0, 3, 4]))

    assert fast_efs.run(body()).data == [pad(b"update"), pad(b"earlier"), pad(b"later")]
