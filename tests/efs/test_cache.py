"""Tests for the EFS block cache (LRU, write-back, track prefetch)."""

import pytest

from repro.efs import BlockCache
from repro.sim import Simulator
from repro.storage import DiskParameters, FixedLatency, SimulatedDisk


def make(capacity=4, track_blocks=4, access_time=0.015, hit_cpu=0.0):
    sim = Simulator(seed=5)
    params = DiskParameters(name="d", capacity_blocks=256)
    disk = SimulatedDisk(sim, params, FixedLatency(access_time))
    cache = BlockCache(disk, capacity=capacity, track_blocks=track_blocks,
                       hit_cpu=hit_cpu)
    return sim, disk, cache


def test_miss_then_hit():
    sim, disk, cache = make(track_blocks=1)
    disk.load_image({3: b"A" * 1024})

    def body():
        first = yield from cache.read(3)
        second = yield from cache.read(3)
        return first, second, sim.now

    first, second, elapsed = sim.run_process(body())
    assert first == second == b"A" * 1024
    assert cache.hits == 1 and cache.misses == 1
    assert elapsed == pytest.approx(0.015)  # only one device access
    assert disk.reads == 1


def test_track_prefetch_serves_siblings_without_io():
    sim, disk, cache = make(track_blocks=4)
    disk.load_image({i: bytes([i]) * 1024 for i in range(8)})

    def body():
        yield from cache.read(0)  # pulls track 0-3
        for sibling in (1, 2, 3):
            yield from cache.read(sibling)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(0.015)
    assert cache.misses == 1 and cache.hits == 3
    assert disk.reads == 1


def test_prefetch_skips_unwritten_siblings():
    sim, disk, cache = make(track_blocks=4)
    disk.load_image({0: b"x" * 1024})  # 1-3 never written

    def body():
        yield from cache.read(0)
        yield from cache.read(1)  # miss: nothing was prefetched for it

    sim.run_process(body())
    assert cache.misses == 2


def test_prefetch_disabled_flag():
    sim, disk, cache = make(track_blocks=4)
    disk.load_image({i: b"x" * 1024 for i in range(4)})

    def body():
        yield from cache.read(0, prefetch=False)
        yield from cache.read(1)

    sim.run_process(body())
    assert cache.misses == 2


def test_lru_eviction_order():
    sim, disk, cache = make(capacity=2, track_blocks=1)
    disk.load_image({i: bytes([i]) * 1024 for i in range(3)})

    def body():
        yield from cache.read(0)
        yield from cache.read(1)
        yield from cache.read(2)  # evicts 0
        yield from cache.read(0)  # miss again

    sim.run_process(body())
    assert cache.misses == 4
    assert cache.evictions >= 1


def test_write_through_is_clean_and_cached():
    sim, disk, cache = make(track_blocks=1)

    def body():
        yield from cache.write_through(5, b"W" * 1024)
        data = yield from cache.read(5)
        return data

    assert sim.run_process(body()) == b"W" * 1024
    assert disk.writes == 1
    assert cache.hits == 1  # the read was served from cache


def test_write_back_defers_device_write():
    sim, disk, cache = make(track_blocks=1)

    def body():
        yield from cache.write_back(5, b"B" * 1024)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == 0.0  # no device I/O yet
    assert disk.writes == 0
    assert cache.peek(5) == b"B" * 1024


def test_dirty_block_flushed_on_eviction():
    sim, disk, cache = make(capacity=2, track_blocks=1)
    disk.load_image({0: b"0" * 1024, 1: b"1" * 1024})

    def body():
        yield from cache.write_back(9, b"D" * 1024)
        yield from cache.read(0)
        yield from cache.read(1)  # capacity 2: evicts dirty 9

    sim.run_process(body())
    assert disk.writes == 1
    assert disk.blocks[9] == b"D" * 1024
    assert cache.writebacks == 1


def test_flush_writes_all_dirty():
    sim, disk, cache = make(capacity=8, track_blocks=1)

    def body():
        yield from cache.write_back(3, b"a" * 1024)
        yield from cache.write_back(1, b"b" * 1024)
        yield from cache.flush()

    sim.run_process(body())
    assert disk.blocks[3] == b"a" * 1024
    assert disk.blocks[1] == b"b" * 1024
    assert disk.writes == 2

    # flushing again writes nothing new
    def body2():
        yield from cache.flush()

    sim.run_process(body2())
    assert disk.writes == 2


def test_invalidate_removes_entry():
    sim, disk, cache = make(track_blocks=1)
    disk.load_image({4: b"z" * 1024})

    def body():
        yield from cache.read(4)
        cache.invalidate(4)
        yield from cache.read(4)

    sim.run_process(body())
    assert cache.misses == 2


def test_invalidate_all():
    sim, disk, cache = make(track_blocks=1)
    disk.load_image({1: b"m" * 1024})

    def body():
        yield from cache.read(1)
        cache.invalidate_all()

    sim.run_process(body())
    assert len(cache) == 0


def test_hit_cpu_charged():
    sim, disk, cache = make(track_blocks=1, hit_cpu=0.001)
    disk.load_image({0: b"h" * 1024})

    def body():
        yield from cache.read(0)
        start = sim.now
        yield from cache.read(0)
        return sim.now - start

    assert sim.run_process(body()) == pytest.approx(0.001)


def test_hit_rate():
    sim, disk, cache = make(track_blocks=1)
    disk.load_image({0: b"r" * 1024})

    def body():
        for _ in range(4):
            yield from cache.read(0)

    sim.run_process(body())
    assert cache.hit_rate == pytest.approx(0.75)


def test_capacity_validation():
    sim = Simulator()
    params = DiskParameters(name="d", capacity_blocks=8)
    disk = SimulatedDisk(sim, params, FixedLatency(0.001))
    with pytest.raises(ValueError):
        BlockCache(disk, capacity=0)
    with pytest.raises(ValueError):
        BlockCache(disk, track_blocks=0)


def test_prefetch_never_overwrites_dirty_entry():
    """A track prefetch must not clobber newer write-back data with the
    stale on-device image."""
    sim, disk, cache = make(capacity=8, track_blocks=4)
    disk.load_image({i: b"old" + bytes(1021) for i in range(4)})

    def body():
        yield from cache.write_back(1, b"new" + bytes(1021))
        yield from cache.read(0)  # prefetches the track, must skip 1
        data = yield from cache.read(1)
        return data

    assert sim.run_process(body())[:3] == b"new"


def test_write_through_does_not_drop_pending_dirty_state():
    # Regression for the dirty-bit expression in _install: a block with
    # an unflushed write-back that is re-installed "clean" by a
    # write_through must stay dirty — flush must still write the final
    # cached contents so eviction/flush semantics never silently lose a
    # pending write-back.
    sim, disk, cache = make(track_blocks=1)

    def body():
        yield from cache.write_back(5, b"B" * 1024)
        yield from cache.write_through(5, b"C" * 1024)
        assert cache._entries[5][1] is True  # still dirty
        yield from cache.flush()

    sim.run_process(body())
    assert disk.blocks[5] == b"C" * 1024
    assert cache._entries[5][1] is False
    assert cache.writebacks == 1


def test_write_back_after_write_through_stays_dirty_until_flush():
    sim, disk, cache = make(track_blocks=1)

    def body():
        yield from cache.write_through(7, b"T" * 1024)
        assert cache._entries[7][1] is False
        yield from cache.write_back(7, b"U" * 1024)
        assert cache._entries[7][1] is True
        assert disk.blocks[7] == b"T" * 1024  # device still has the old data
        yield from cache.flush()

    sim.run_process(body())
    assert disk.blocks[7] == b"U" * 1024
    assert cache._entries[7][1] is False


# ---------------------------------------------------------------------------
# S25: cache coherence against every registered driver
# ---------------------------------------------------------------------------


ALL_DRIVER_KINDS = ("ram", "hostfs", "object")


def make_on_driver(kind, tmp_path, capacity=4, track_blocks=1):
    from repro.storage import make_driver

    spec = {"kind": "hostfs", "root": tmp_path} if kind == "hostfs" else kind
    sim = Simulator(seed=5)
    disk = make_driver(spec, sim, name="d", capacity_blocks=256)
    cache = BlockCache(disk, capacity=capacity, track_blocks=track_blocks)
    return sim, disk, cache


@pytest.mark.parametrize("kind", ALL_DRIVER_KINDS)
def test_miss_then_hit_on_every_driver(kind, tmp_path):
    """A hit never touches the device, regardless of the backend."""
    sim, disk, cache = make_on_driver(kind, tmp_path)
    disk.load_image({3: b"A" * 1024})

    def body():
        first = yield from cache.read(3)
        second = yield from cache.read(3)
        return first, second

    first, second = sim.run_process(body())
    assert first == second == b"A" * 1024
    assert cache.hits == 1 and cache.misses == 1
    assert disk.reads == 1


@pytest.mark.parametrize("kind", ALL_DRIVER_KINDS)
def test_write_back_flush_reaches_device_on_every_driver(kind, tmp_path):
    """Deferred write-back lands on the backing store at flush time —
    for hostfs that means the bytes are really in the block file."""
    sim, disk, cache = make_on_driver(kind, tmp_path)

    def body():
        yield from cache.write_back(5, b"B" * 1024)
        before = disk.writes
        yield from cache.flush()
        return before

    before = sim.run_process(body())
    assert before == 0  # deferred until flush
    assert disk.writes == 1
    assert bytes(disk.blocks[5]).startswith(b"B" * 1024)


@pytest.mark.parametrize("kind", ALL_DRIVER_KINDS)
def test_invalidate_rereads_device_on_every_driver(kind, tmp_path):
    """After invalidate_all, a read must consult the device again and
    observe out-of-band changes to the underlying blocks."""
    sim, disk, cache = make_on_driver(kind, tmp_path)
    disk.load_image({9: b"old" + b"\x00" * 1021})

    def warm():
        return (yield from cache.read(9))

    assert sim.run_process(warm()).startswith(b"old")
    disk.blocks[9] = b"new" + b"\x00" * 1021
    cache.invalidate_all()

    def reread():
        return (yield from cache.read(9))

    assert sim.run_process(reread()).startswith(b"new")
    assert disk.reads == 2
