"""Model-based property test for the block cache: arbitrary sequences of
reads, write-throughs, write-backs, invalidations, and flushes must never
lose data, and the post-flush device image must be exact."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.efs import BlockCache
from repro.sim import Simulator
from repro.storage import DiskParameters, FixedLatency, SimulatedDisk

_ADDRESSES = st.integers(0, 15)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), _ADDRESSES),
        st.tuples(st.just("wt"), _ADDRESSES, st.integers(0, 255)),
        st.tuples(st.just("wb"), _ADDRESSES, st.integers(0, 255)),
        st.tuples(st.just("inv"), _ADDRESSES),
        st.tuples(st.just("flush")),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_ops, capacity=st.integers(1, 8), track=st.integers(1, 4))
def test_cache_agrees_with_write_history(ops, capacity, track):
    sim = Simulator(seed=151)
    disk = SimulatedDisk(
        sim, DiskParameters(name="d", capacity_blocks=64), FixedLatency(1e-5)
    )
    cache = BlockCache(disk, capacity=capacity, track_blocks=track)

    written = {}      # address -> last value written by anyone
    invalidated = set()  # dirty data deliberately dropped via invalidate

    def block(value):
        return bytes([value]) * 1024

    def driver():
        for op in ops:
            kind = op[0]
            if kind == "read":
                _, address = op
                if address in invalidated:
                    # an earlier invalidate may have legitimately dropped
                    # a dirty write; reads are unspecified for it
                    data = yield from cache.read(address)
                    continue
                data = yield from cache.read(address)
                expected = written.get(address, b"\x00" * 1024)
                assert data == expected, (
                    f"read {address}: got {data[:2]!r}, wanted {expected[:2]!r}"
                )
            elif kind == "wt":
                _, address, value = op
                yield from cache.write_through(address, block(value))
                written[address] = block(value)
                invalidated.discard(address)
            elif kind == "wb":
                _, address, value = op
                yield from cache.write_back(address, block(value))
                written[address] = block(value)
                invalidated.discard(address)
            elif kind == "inv":
                _, address = op
                # invalidating a dirty block drops its latest value; track
                # that the contents are now unspecified until rewritten
                if cache.peek(address) is not None:
                    # conservative: treat any cached block as possibly dirty
                    invalidated.add(address)
                cache.invalidate(address)
            elif kind == "flush":
                yield from cache.flush()
        # final flush: the device must now hold the exact last values for
        # every address never invalidated-dirty
        yield from cache.flush()

    sim.run_process(driver())
    for address, expected in written.items():
        if address in invalidated:
            continue
        actual = disk.blocks.get(address, b"\x00" * 1024)
        assert actual == expected, f"device block {address} diverged"
