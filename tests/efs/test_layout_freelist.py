"""Tests for the on-disk block layout and the free list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BLOCK_SIZE, DATA_BYTES_PER_BLOCK
from repro.efs import (
    NULL_ADDR,
    BridgeHeader,
    EFSHeader,
    FreeList,
    is_efs_block,
    pack_block,
    unpack_block,
)
from repro.errors import EFSCorruptionError, EFSOutOfSpaceError


# ---------------------------------------------------------------------------
# Layout
# ---------------------------------------------------------------------------


def test_block_constants():
    assert DATA_BYTES_PER_BLOCK == 960  # 1024 - 24 - 40, per section 4.3


def test_pack_unpack_roundtrip():
    efs = EFSHeader(next_addr=7, prev_addr=3, file_number=42, block_number=9)
    bridge = BridgeHeader(
        global_file_id=1001, global_block=95, width=8, start_node=2, column=5
    )
    raw = pack_block(efs, bridge, b"payload")
    assert len(raw) == BLOCK_SIZE
    efs2, bridge2, data = unpack_block(raw)
    assert efs2 == efs
    assert bridge2 == bridge
    assert data[:7] == b"payload"
    assert data[7:] == b"\x00" * (DATA_BYTES_PER_BLOCK - 7)


def test_pack_rejects_oversize_data():
    with pytest.raises(ValueError):
        pack_block(EFSHeader(), BridgeHeader(), b"x" * (DATA_BYTES_PER_BLOCK + 1))


def test_pack_accepts_exactly_full_data():
    raw = pack_block(EFSHeader(), BridgeHeader(), b"y" * DATA_BYTES_PER_BLOCK)
    _e, _b, data = unpack_block(raw)
    assert data == b"y" * DATA_BYTES_PER_BLOCK


def test_unpack_rejects_wrong_size():
    with pytest.raises(EFSCorruptionError):
        unpack_block(b"short")


def test_unpack_rejects_bad_magic():
    raw = bytearray(pack_block(EFSHeader(), BridgeHeader(), b""))
    raw[20] ^= 0xFF  # corrupt the magic word
    with pytest.raises(EFSCorruptionError):
        unpack_block(bytes(raw))


def test_is_efs_block_probe():
    good = pack_block(EFSHeader(), BridgeHeader(), b"d")
    assert is_efs_block(good)
    assert not is_efs_block(b"\x00" * BLOCK_SIZE)
    assert not is_efs_block(b"tiny")


def test_null_addr_packs():
    efs = EFSHeader(next_addr=NULL_ADDR, prev_addr=NULL_ADDR)
    efs2, _b, _d = unpack_block(pack_block(efs, BridgeHeader(), b""))
    assert efs2.next_addr == NULL_ADDR
    assert efs2.prev_addr == NULL_ADDR


@settings(max_examples=50)
@given(
    next_addr=st.integers(-1, 2**31 - 1),
    prev_addr=st.integers(-1, 2**31 - 1),
    file_number=st.integers(0, 2**62),
    block_number=st.integers(0, 2**31 - 1),
    data=st.binary(max_size=DATA_BYTES_PER_BLOCK),
)
def test_layout_roundtrip_property(next_addr, prev_addr, file_number, block_number, data):
    efs = EFSHeader(next_addr, prev_addr, file_number, block_number)
    bridge = BridgeHeader(file_number, block_number * 4 + 1, 4, 0, 1)
    efs2, bridge2, data2 = unpack_block(pack_block(efs, bridge, data))
    assert efs2 == efs
    assert bridge2 == bridge
    assert data2[: len(data)] == data
    assert set(data2[len(data):]) <= {0}


# ---------------------------------------------------------------------------
# Free list
# ---------------------------------------------------------------------------


def test_freelist_allocates_lowest_first():
    freelist = FreeList(capacity=100, start=10)
    assert [freelist.allocate() for _ in range(3)] == [10, 11, 12]


def test_freelist_respects_reserved_region():
    freelist = FreeList(capacity=100, start=64)
    assert freelist.allocate() == 64
    with pytest.raises(ValueError):
        freelist.free(5)


def test_freelist_free_and_reuse():
    freelist = FreeList(capacity=16, start=0)
    addresses = [freelist.allocate() for _ in range(16)]
    assert addresses == list(range(16))
    with pytest.raises(EFSOutOfSpaceError):
        freelist.allocate()
    freelist.free(7)
    assert freelist.allocate() == 7


def test_freelist_double_free_rejected():
    freelist = FreeList(capacity=8)
    address = freelist.allocate()
    freelist.free(address)
    with pytest.raises(ValueError):
        freelist.free(address)


def test_freelist_counts():
    freelist = FreeList(capacity=10, start=2)
    assert freelist.free_count == 8
    freelist.allocate()
    freelist.allocate()
    assert freelist.allocated_count == 2
    assert freelist.free_count == 6
    assert not freelist.is_free(2)
    assert freelist.is_free(9)


def test_freelist_bad_region_rejected():
    with pytest.raises(ValueError):
        FreeList(capacity=5, start=9)


def test_freelist_iter_free_sorted():
    freelist = FreeList(capacity=6)
    for _ in range(6):
        freelist.allocate()
    freelist.free(4)
    freelist.free(1)
    assert list(freelist.iter_free()) == [1, 4]


@settings(max_examples=50)
@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
def test_freelist_invariants_property(ops):
    """Allocated and free sets always partition the region; no address is
    ever handed out twice without an intervening free."""
    capacity = 32
    freelist = FreeList(capacity=capacity)
    allocated = set()
    for op in ops:
        if op == "alloc":
            if len(allocated) == capacity:
                with pytest.raises(EFSOutOfSpaceError):
                    freelist.allocate()
            else:
                address = freelist.allocate()
                assert address not in allocated
                assert 0 <= address < capacity
                allocated.add(address)
        else:
            if allocated:
                victim = min(allocated)
                allocated.discard(victim)
                freelist.free(victim)
        assert freelist.allocated_count == len(allocated)
        assert freelist.free_count == capacity - len(allocated)
