"""Tests for the EFS server: create/read/write/append/delete, hints,
linked-list structure, and timing shape."""

import pytest

from repro.config import DATA_BYTES_PER_BLOCK
from repro.efs import NULL_ADDR, unpack_block
from repro.errors import (
    EFSBlockNotFoundError,
    EFSFileExistsError,
    EFSFileNotFoundError,
)


def chunk(tag, index):
    return (f"{tag}-{index}-".encode() * 40)[:DATA_BYTES_PER_BLOCK - 10]


# ---------------------------------------------------------------------------
# Create / exists / list
# ---------------------------------------------------------------------------


def test_create_and_exists(efs):
    def body():
        yield from efs.client.create(42)
        return (yield from efs.client.exists(42))

    assert efs.run(body()) is True


def test_exists_false_for_unknown(efs):
    def body():
        return (yield from efs.client.exists(999))

    assert efs.run(body()) is False


def test_create_duplicate_rejected(efs):
    def body():
        yield from efs.client.create(7)
        try:
            yield from efs.client.create(7)
        except EFSFileExistsError:
            return "caught"

    assert efs.run(body()) == "caught"


def test_list_files(fast_efs):
    def body():
        for number in (5, 17, 3):
            yield from fast_efs.client.create(number)
        return (yield from fast_efs.client.list_files())

    assert fast_efs.run(body()) == [3, 5, 17]


def test_new_file_is_empty(efs):
    def body():
        yield from efs.client.create(1)
        info = yield from efs.client.info(1)
        return info

    info = efs.run(body())
    assert info.size_blocks == 0
    assert info.empty
    assert info.head_addr == NULL_ADDR


# ---------------------------------------------------------------------------
# Append / read
# ---------------------------------------------------------------------------


def test_append_then_read_roundtrip(efs):
    def body():
        yield from efs.client.create(1)
        yield from efs.client.append(1, b"block zero")
        result = yield from efs.client.read(1, 0)
        return result

    result = efs.run(body())
    assert result.data[:10] == b"block zero"
    assert result.block_number == 0
    # single-block circular list points at itself
    assert result.next_addr == result.addr
    assert result.prev_addr == result.addr


def test_multi_block_file_contents(fast_efs):
    def body():
        yield from fast_efs.client.create(2)
        for index in range(10):
            yield from fast_efs.client.append(2, chunk("f2", index))
        chunks = yield from fast_efs.client.read_file(2)
        return chunks

    chunks = fast_efs.run(body())
    assert len(chunks) == 10
    for index, data in enumerate(chunks):
        assert data.startswith(chunk("f2", index))


def test_append_returns_growing_block_numbers(fast_efs):
    def body():
        yield from fast_efs.client.create(3)
        numbers = []
        for index in range(5):
            result = yield from fast_efs.client.append(3, b"x")
            numbers.append(result.block_number)
        return numbers

    assert fast_efs.run(body()) == [0, 1, 2, 3, 4]


def test_info_size_tracks_appends(fast_efs):
    def body():
        yield from fast_efs.client.create(4)
        sizes = []
        for _ in range(3):
            yield from fast_efs.client.append(4, b"d")
            info = yield from fast_efs.client.info(4)
            sizes.append(info.size_blocks)
        return sizes

    assert fast_efs.run(body()) == [1, 2, 3]


def test_read_missing_file(efs):
    def body():
        try:
            yield from efs.client.read(404, 0)
        except EFSFileNotFoundError:
            return "caught"

    assert efs.run(body()) == "caught"


def test_read_past_end(fast_efs):
    def body():
        yield from fast_efs.client.create(5)
        yield from fast_efs.client.append(5, b"only")
        try:
            yield from fast_efs.client.read(5, 1)
        except EFSBlockNotFoundError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


def test_read_empty_file(efs):
    def body():
        yield from efs.client.create(6)
        try:
            yield from efs.client.read(6, 0)
        except EFSBlockNotFoundError:
            return "caught"

    assert efs.run(body()) == "caught"


def test_oversize_append_rejected(efs):
    def body():
        yield from efs.client.create(7)
        try:
            yield from efs.client.append(7, b"z" * (DATA_BYTES_PER_BLOCK + 1))
        except ValueError:
            return "caught"

    assert efs.run(body()) == "caught"


# ---------------------------------------------------------------------------
# Write (in place and append-at-end)
# ---------------------------------------------------------------------------


def test_write_at_size_appends(fast_efs):
    def body():
        yield from fast_efs.client.create(8)
        yield from fast_efs.client.write(8, 0, b"first")
        yield from fast_efs.client.write(8, 1, b"second")
        chunks = yield from fast_efs.client.read_file(8)
        return chunks

    chunks = fast_efs.run(body())
    assert chunks[0].startswith(b"first")
    assert chunks[1].startswith(b"second")


def test_write_in_place_overwrites(fast_efs):
    def body():
        yield from fast_efs.client.create(9)
        for index in range(4):
            yield from fast_efs.client.append(9, chunk("old", index))
        yield from fast_efs.client.write(9, 2, b"REPLACED")
        chunks = yield from fast_efs.client.read_file(9)
        return chunks

    chunks = fast_efs.run(body())
    assert chunks[2].startswith(b"REPLACED")
    assert chunks[1].startswith(chunk("old", 1))
    assert chunks[3].startswith(chunk("old", 3))


def test_overwrite_preserves_links(fast_efs):
    def body():
        yield from fast_efs.client.create(10)
        for index in range(3):
            yield from fast_efs.client.append(10, b"v1")
        before = yield from fast_efs.client.read(10, 1)
        yield from fast_efs.client.write(10, 1, b"v2")
        after = yield from fast_efs.client.read(10, 1)
        return before, after

    before, after = fast_efs.run(body())
    assert after.addr == before.addr
    assert after.next_addr == before.next_addr
    assert after.prev_addr == before.prev_addr


def test_sparse_write_rejected(fast_efs):
    def body():
        yield from fast_efs.client.create(11)
        try:
            yield from fast_efs.client.write(11, 5, b"hole")
        except EFSBlockNotFoundError:
            return "caught"

    assert fast_efs.run(body()) == "caught"


# ---------------------------------------------------------------------------
# Delete
# ---------------------------------------------------------------------------


def test_delete_frees_all_blocks(fast_efs):
    def body():
        yield from fast_efs.client.create(12)
        for index in range(6):
            yield from fast_efs.client.append(12, b"gone")
        before = fast_efs.server.freelist.allocated_count
        freed = yield from fast_efs.client.delete(12)
        after = fast_efs.server.freelist.allocated_count
        exists = yield from fast_efs.client.exists(12)
        return freed, before - after, exists

    freed, delta, exists = fast_efs.run(body())
    assert freed == 6
    assert delta == 6
    assert exists is False


def test_delete_empty_file(fast_efs):
    def body():
        yield from fast_efs.client.create(13)
        freed = yield from fast_efs.client.delete(13)
        return freed

    assert fast_efs.run(body()) == 0


def test_delete_missing_file(efs):
    def body():
        try:
            yield from efs.client.delete(404)
        except EFSFileNotFoundError:
            return "caught"

    assert efs.run(body()) == "caught"


def test_space_reused_after_delete(fast_efs):
    def body():
        yield from fast_efs.client.create(14)
        for _ in range(4):
            yield from fast_efs.client.append(14, b"a")
        yield from fast_efs.client.delete(14)
        yield from fast_efs.client.create(15)
        for _ in range(4):
            yield from fast_efs.client.append(15, b"b")
        chunks = yield from fast_efs.client.read_file(15)
        return chunks

    chunks = fast_efs.run(body())
    assert all(c.startswith(b"b") for c in chunks)


# ---------------------------------------------------------------------------
# Hints
# ---------------------------------------------------------------------------


def test_exact_hint_skips_directory(fast_efs):
    def body():
        yield from fast_efs.client.create(16)
        results = []
        for index in range(3):
            results.append((yield from fast_efs.client.append(16, b"h")))
        # warm reads done; now count disk ops for a hinted read
        target = yield from fast_efs.client.read(16, 1)
        reads_before = fast_efs.disk.reads
        again = yield from fast_efs.client.read(16, 1, hint=target.addr)
        return target, again, fast_efs.disk.reads - reads_before

    target, again, extra_reads = fast_efs.run(body())
    assert again.data == target.data
    assert extra_reads == 0  # served entirely from cache via the hint


def test_stale_hint_wrong_file_ignored(fast_efs):
    def body():
        yield from fast_efs.client.create(17)
        yield from fast_efs.client.append(17, b"mine")
        yield from fast_efs.client.create(18)
        yield from fast_efs.client.append(18, b"other")
        other = yield from fast_efs.client.read(18, 0)
        # hint points into file 18; reading file 17 must still be correct
        result = yield from fast_efs.client.read(17, 0, hint=other.addr)
        return result.data[:4]

    assert fast_efs.run(body()) == b"mine"


def test_hint_into_same_file_wrong_block_accelerates_walk(fast_efs):
    def body():
        yield from fast_efs.client.create(19)
        for index in range(20):
            yield from fast_efs.client.append(19, chunk("w", index))
        near = yield from fast_efs.client.read(19, 10)
        result = yield from fast_efs.client.read(19, 11, hint=near.addr)
        return result.data

    assert fast_efs.run(body()).startswith(chunk("w", 11))


def test_garbage_hint_ignored(fast_efs):
    def body():
        yield from fast_efs.client.create(20)
        yield from fast_efs.client.append(20, b"safe")
        result = yield from fast_efs.client.read(20, 0, hint=1_000_000)
        return result.data[:4]

    assert fast_efs.run(body()) == b"safe"


# ---------------------------------------------------------------------------
# On-disk structure invariants
# ---------------------------------------------------------------------------


def test_on_disk_circular_doubly_linked_list(fast_efs):
    def body():
        yield from fast_efs.client.create(21)
        for index in range(5):
            yield from fast_efs.client.append(21, chunk("c", index))
        yield from fast_efs.client.flush()
        info = yield from fast_efs.client.info(21)
        return info

    info = fast_efs.run(body())
    disk = fast_efs.disk
    # walk the raw device image
    addr = info.head_addr
    seen = []
    for _ in range(info.size_blocks):
        header, bridge, _data = unpack_block(disk.blocks[addr])
        seen.append((addr, header))
        addr = header.next_addr
    assert addr == info.head_addr  # circular
    numbers = [h.block_number for _a, h in seen]
    assert numbers == [0, 1, 2, 3, 4]
    # prev pointers mirror next pointers
    for index in range(len(seen)):
        addr_here, _h = seen[index]
        _a_next, h_next = seen[(index + 1) % len(seen)]
        assert h_next.prev_addr == addr_here


def test_bridge_headers_carry_global_identity(fast_efs):
    def body():
        yield from fast_efs.client.create(
            22, global_file_id=900, width=4, column=2
        )
        yield from fast_efs.client.append(22, b"g0")
        yield from fast_efs.client.append(22, b"g1")
        yield from fast_efs.client.flush()
        info = yield from fast_efs.client.info(22)
        return info

    info = fast_efs.run(body())
    assert info.global_file_id == 900
    assert info.width == 4
    assert info.column == 2
    header, bridge, _ = unpack_block(fast_efs.disk.blocks[info.head_addr])
    assert bridge.global_file_id == 900
    # local block 0 in column 2 of a width-4 file is global block 2
    assert bridge.global_block == 2
    header2, bridge2, _ = unpack_block(fast_efs.disk.blocks[header.next_addr])
    assert bridge2.global_block == 6  # 1 * 4 + 2


# ---------------------------------------------------------------------------
# Timing shape (the Table 2 phenomena at LFS level)
# ---------------------------------------------------------------------------


def test_sequential_read_beats_disk_latency(efs):
    """Track buffering: the average hinted sequential read must cost less
    than the 15 ms device access time (Table 2 discussion)."""

    def body():
        yield from efs.client.create(30)
        for index in range(64):
            yield from efs.client.append(30, b"r" * 100)
        start = efs.sim.now
        yield from efs.client.read_file(30)
        return (efs.sim.now - start) / 64

    per_block = efs.run(body())
    assert per_block < 0.015
    assert per_block > 0.002


def test_append_costs_about_two_device_writes(efs):
    """Steady-state appends: new block + old-tail pointer update ~= 2
    write-throughs (the head back-pointer is a lazy write-back)."""

    def body():
        yield from efs.client.create(31)
        yield from efs.client.append(31, b"warm")
        yield from efs.client.append(31, b"warm")
        start = efs.sim.now
        for _ in range(10):
            yield from efs.client.append(31, b"x" * 500)
        return (efs.sim.now - start) / 10

    per_block = efs.run(body())
    assert 0.030 <= per_block <= 0.040  # ~31 ms in the paper


def test_random_access_cost_grows_with_distance(efs):
    """Uncached interior blocks require a linked-list walk."""

    def body():
        yield from efs.client.create(32)
        for index in range(120):
            yield from efs.client.append(32, b"d")
        # flush dirty metadata, then blow the cache so walks hit the device
        yield from efs.client.flush()
        efs.server.cache.invalidate_all()
        start = efs.sim.now
        yield from efs.client.read(32, 2)
        near = efs.sim.now - start
        efs.server.cache.invalidate_all()
        start = efs.sim.now
        yield from efs.client.read(32, 60)
        far = efs.sim.now - start
        return near, far

    near, far = efs.run(body())
    assert far > near * 3


def test_delete_costs_about_20ms_per_block(efs):
    def body():
        yield from efs.client.create(33)
        for _ in range(20):
            yield from efs.client.append(33, b"k")
        start = efs.sim.now
        yield from efs.client.delete(33)
        return (efs.sim.now - start) / 20

    per_block = efs.run(body())
    assert 0.015 <= per_block <= 0.025  # paper: 20 ms
