"""Parity through the batched write path: full-stripe loads stay
fsck-clean and survive a failure exactly like single-block writes."""

import pytest

from repro.efs.fsck import check_system
from repro.faults import FaultInjector
from repro.harness.builders import BridgeSystem
from repro.storage import FixedLatency
from repro.config import DATA_BYTES_PER_BLOCK
from repro.workloads import pattern_chunks


def padded_chunks(count, stamp=b"BLK"):
    """pattern_chunks padded to the full data area: EFS reads always
    return the zero-padded 960-byte data area, so full-size chunks make
    exact equality comparisons valid."""
    return [
        chunk.ljust(DATA_BYTES_PER_BLOCK, b"\x00")
        for chunk in pattern_chunks(count, stamp=stamp)
    ]


def make_system(p=5, seed=17):
    return BridgeSystem(
        p, seed=seed, disk_latency=FixedLatency(0.0001), redundancy="parity"
    )


def load(system, chunks, batched=True):
    pfile = system.redundant_file("pf")

    def body():
        yield from pfile.create()
        if batched:
            yield from pfile.write_all_batched(chunks)
        else:
            yield from pfile.write_all(chunks)

    system.run(body())
    return pfile


def test_batched_load_roundtrip_and_fsck():
    system = make_system()
    chunks = padded_chunks(16)  # 4 full stripes at p=5
    pfile = load(system, chunks)

    def read():
        return (yield from pfile.read_all())

    data, _stats = system.run(read())
    assert data == chunks
    assert all(report.clean for report in check_system(system))


def test_batched_load_skips_rmw_and_batches_requests():
    system = make_system()
    chunks = padded_chunks(16)
    before = sum(s.requests_served for s in system.efs_servers)
    pfile = load(system, chunks)
    served = sum(s.requests_served for s in system.efs_servers) - before
    assert pfile.parity_rmw_reads == 0
    # Create costs p EFS creates + p info probes are charged by open/create
    # paths; the batched load itself is exactly p write_blocks requests.
    # Measure it directly instead: reload into a fresh system.
    system2 = make_system(seed=23)
    pfile2 = system2.redundant_file("pf")

    def body():
        yield from pfile2.create()

    system2.run(body())
    before = sum(s.requests_served for s in system2.efs_servers)

    def batch():
        yield from pfile2.write_all_batched(chunks)

    system2.run(batch())
    served = sum(s.requests_served for s in system2.efs_servers) - before
    assert served == system2.width  # one batched request per constituent


def test_batched_load_matches_single_block_content():
    chunks = padded_chunks(12)
    batched = make_system(seed=31)
    single = make_system(seed=31)
    pf_batched = load(batched, chunks, batched=True)
    pf_single = load(single, chunks, batched=False)

    def read(pfile):
        def body():
            return (yield from pfile.read_all())
        return body

    data_batched, _ = batched.run(read(pf_batched)())
    data_single, _ = single.run(read(pf_single)())
    assert data_batched == data_single == chunks


def test_batched_load_survives_single_failure():
    system = make_system()
    chunks = padded_chunks(20)
    pfile = load(system, chunks)
    for efs in system.efs_servers:
        system.run(efs.cache.flush())
        efs.cache.invalidate_all()
    FaultInjector(system).fail_slot(2)

    def read():
        return (yield from pfile.read_all())

    data, stats = system.run(read())
    assert data == chunks
    assert stats.degraded > 0  # reconstruction actually happened


def test_batched_load_partial_final_stripe():
    system = make_system()  # p=5 -> 4 data blocks per stripe
    chunks = padded_chunks(6)  # 1.5 stripes
    pfile = load(system, chunks)

    def read():
        return (yield from pfile.read_all())

    data, _stats = system.run(read())
    assert data == chunks
    assert all(report.clean for report in check_system(system))


def test_batched_load_rejects_mid_stripe_start():
    system = make_system()
    pfile = system.redundant_file("pf")

    def body():
        yield from pfile.create()
        yield from pfile.write_all(padded_chunks(3))  # mid-stripe (4/stripe)
        yield from pfile.write_all_batched(padded_chunks(4))

    with pytest.raises(Exception) as excinfo:
        system.run(body())
    cause = excinfo.value.__cause__ or excinfo.value
    assert isinstance(cause, ValueError)


def test_batched_load_then_single_block_updates_keep_parity():
    """RMW updates on top of a batched load still reconstruct correctly."""
    system = make_system()
    chunks = padded_chunks(8)
    pfile = load(system, chunks)
    new_data = b"\x7f" * 960

    def update():
        yield from pfile.write_block(3, new_data)

    system.run(update())
    for efs in system.efs_servers:
        system.run(efs.cache.flush())
        efs.cache.invalidate_all()
    _stripe, slot = pfile.geometry.locate(3)
    FaultInjector(system).fail_slot(slot)

    def read():
        return (yield from pfile.read_block(3))

    assert system.run(read()) == new_data
