"""The redundancy knob, manager wiring, and post-rebuild fsck."""

import pytest

from repro.efs.fsck import check_system
from repro.faults import FaultInjector, MirroredFile
from repro.harness.builders import BridgeSystem
from repro.redundancy import (
    SCHEMES,
    ParityFile,
    PlainFile,
    RedundancyManager,
)
from repro.storage import FixedLatency
from repro.workloads import pattern_chunks


def make_system(p=4, seed=33, **kwargs):
    return BridgeSystem(p, seed=seed, disk_latency=FixedLatency(0.0005),
                        **kwargs)


def drop_caches(system):
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()


def build(system, rfile, chunks):
    def setup():
        yield from rfile.create()
        yield from rfile.write_all(chunks)

    system.run(setup(), name="setup")


def read_all(system, rfile):
    def body():
        return (yield from rfile.read_all())

    return system.run(body(), name="read")


# ---------------------------------------------------------------------------
# The scheme knob
# ---------------------------------------------------------------------------


def test_builder_knob_selects_file_class():
    expected = {"none": PlainFile, "mirror": MirroredFile, "parity": ParityFile}
    assert set(SCHEMES) == set(expected)
    for scheme, cls in expected.items():
        system = make_system(redundancy=scheme)
        assert system.redundancy.scheme == scheme
        assert isinstance(system.redundant_file("f"), cls)


def test_unknown_scheme_is_rejected():
    system = make_system()
    with pytest.raises(ValueError):
        RedundancyManager(system, "raid6")
    with pytest.raises(ValueError):
        make_system(redundancy="erasure")


def test_every_scheme_round_trips_content():
    chunks = pattern_chunks(9)
    for scheme in SCHEMES:
        system = make_system(redundancy=scheme)
        rfile = system.redundant_file("payload")
        build(system, rfile, chunks)
        read_back, _stats = read_all(system, rfile)
        assert len(read_back) == 9
        for got, want in zip(read_back, chunks):
            assert got.startswith(want), scheme


def test_plain_file_reports_no_stats():
    system = make_system(redundancy="none")
    rfile = system.redundant_file("bare")
    build(system, rfile, pattern_chunks(4))
    read_back, stats = read_all(system, rfile)
    assert len(read_back) == 4
    assert stats is None


def test_manager_tracks_failed_slots():
    system = make_system(redundancy="parity")
    injector = FaultInjector(system)
    assert not system.redundancy.degraded()
    injector.fail_slot(3)
    assert system.redundancy.degraded()
    assert 3 in system.redundancy.failed_slots
    injector.repair_slot(3)
    assert not system.redundancy.degraded()


# ---------------------------------------------------------------------------
# Auto-rebuild on repair + fsck (the acceptance lifecycle)
# ---------------------------------------------------------------------------


def test_repair_auto_starts_rebuild_under_parity():
    system = make_system(redundancy="parity")
    rfile = system.redundant_file("healing")
    build(system, rfile, pattern_chunks(8))
    drop_caches(system)
    injector = FaultInjector(system)
    with injector.failed(1):
        pass
    assert len(system.redundancy.rebuilds) == 1
    system.sim.run()  # drain the spawned sweep
    assert system.redundancy.rebuilds[0].progress.done


def test_fsck_clean_after_fail_degraded_writes_repair_rebuild():
    """The full S16 story: fail a slot, keep writing, repair, rebuild
    online, and the strict-layout fsck finds nothing wrong."""
    system = make_system(redundancy="parity")
    rfile = system.redundant_file("ledger")
    chunks = pattern_chunks(10)
    build(system, rfile, chunks)
    drop_caches(system)

    injector = FaultInjector(system)
    injector.fail_slot(2)

    # degraded traffic: one overwrite onto the dead slot, two appends
    stripe0_logical = rfile.geometry.logical_of(0, 2)
    replacement = b"DEGRADED OVERWRITE"
    extra = pattern_chunks(2, stamp=b"APP")

    def degraded_traffic():
        if stripe0_logical is not None:
            yield from rfile.write_block(stripe0_logical, replacement)
        yield from rfile.write_all(extra)

    system.run(degraded_traffic(), name="degraded-traffic")
    expected = list(chunks)
    if stripe0_logical is not None:
        expected[stripe0_logical] = replacement
    expected += extra

    injector.repair_slot(2)  # auto-starts the online rebuild
    system.sim.run()
    assert system.redundancy.rebuilds
    assert all(r.progress.done for r in system.redundancy.rebuilds)

    drop_caches(system)
    read_back, stats = read_all(system, rfile)
    assert len(read_back) == len(expected)
    for got, want in zip(read_back, expected):
        assert got.startswith(want)
    # nothing needed reconstruction: the rebuild restored the slot
    degraded_before = stats.degraded
    read_again, stats = read_all(system, rfile)
    assert stats.degraded == degraded_before
    assert read_again == read_back

    reports = check_system(system)
    assert len(reports) == system.width
    assert all(report.clean for report in reports), [
        report for report in reports if not report.clean
    ]
