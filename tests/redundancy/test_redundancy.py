"""Tests for the rotating-parity redundancy subsystem (S16)."""

import pytest

from repro.efs.layout import DATA_BYTES_PER_BLOCK
from repro.errors import DeviceFailedError, ProcessError
from repro.faults import FaultInjector
from repro.harness.builders import BridgeSystem
from repro.redundancy import (
    OnlineRebuild,
    ParityFile,
    ParityGeometry,
    files_lost_fraction_parity,
    parity_storage_factor,
    xor_blocks,
)
from repro.sim import Timeout
from repro.storage import FixedLatency
from repro.workloads import pattern_chunks


def make_system(p=4, seed=20, **kwargs):
    return BridgeSystem(p, seed=seed, disk_latency=FixedLatency(0.0005),
                        **kwargs)


def drop_caches(system):
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()


def build_parity_file(system, name, chunks):
    pfile = ParityFile(system, name)

    def setup():
        yield from pfile.create()
        yield from pfile.write_all(chunks)

    system.run(setup(), name="parity-setup")
    return pfile


def read_all(system, pfile):
    def body():
        return (yield from pfile.read_all())

    return system.run(body(), name="read-all")


def matches(read_back, originals):
    return len(read_back) == len(originals) and all(
        got.startswith(want) for got, want in zip(read_back, originals)
    )


# ---------------------------------------------------------------------------
# XOR and geometry
# ---------------------------------------------------------------------------


def test_xor_blocks_is_self_inverse():
    a, b = b"hello world", b"parity"
    p = xor_blocks(a, b)
    # XORing the parity with one part recovers the other (zero-padded)
    assert xor_blocks(p, b).startswith(a)
    assert xor_blocks(p, a).startswith(b)


def test_xor_blocks_pads_and_treats_none_as_zeros():
    assert xor_blocks(b"\x01", b"\x01\x02") == b"\x00\x02"
    assert xor_blocks(None, b"\x07") == b"\x07"
    assert xor_blocks() == b""
    assert xor_blocks(b"ab", b"ab") == b"\x00\x00"


def test_geometry_requires_width_three():
    with pytest.raises(ValueError):
        ParityGeometry(2)
    ParityGeometry(3)  # minimum viable


def test_parity_slot_rotates_round_robin():
    geo = ParityGeometry(4)
    assert [geo.parity_slot(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_locate_logical_of_round_trip():
    geo = ParityGeometry(5)
    for logical in range(37):
        stripe, slot = geo.locate(logical)
        assert slot != geo.parity_slot(stripe)
        assert geo.logical_of(stripe, slot) == logical
    # the parity slot holds no logical block
    for stripe in range(6):
        assert geo.logical_of(stripe, geo.parity_slot(stripe)) is None


def test_data_slots_exclude_the_parity_slot():
    geo = ParityGeometry(4)
    for stripe in range(8):
        slots = geo.data_slots(stripe)
        assert len(slots) == 3
        assert geo.parity_slot(stripe) not in slots


def test_physical_blocks_count_full_stripe_capacity():
    geo = ParityGeometry(4)
    assert geo.data_per_stripe == 3
    assert geo.stripes_for(0) == 0
    assert geo.stripes_for(3) == 1
    assert geo.stripes_for(4) == 2
    assert geo.physical_blocks(9) == 3 * 4
    assert geo.physical_blocks(10) == 4 * 4  # partial tail stripe reserved


def test_storage_factor_is_p_over_p_minus_one():
    assert parity_storage_factor(4) == pytest.approx(4 / 3)
    assert parity_storage_factor(8) == pytest.approx(8 / 7)
    assert ParityGeometry(3).storage_factor() == pytest.approx(1.5)


def test_files_lost_fraction_parity():
    assert files_lost_fraction_parity(8, 0) == 0.0
    assert files_lost_fraction_parity(8, 1) == 0.0  # single failure: safe
    assert files_lost_fraction_parity(8, 2) == 1.0  # double failure: fatal


# ---------------------------------------------------------------------------
# Healthy path
# ---------------------------------------------------------------------------


def test_healthy_write_read_round_trip():
    system = make_system()
    chunks = pattern_chunks(10)
    pfile = build_parity_file(system, "plain-sailing", chunks)
    read_back, stats = read_all(system, pfile)
    assert matches(read_back, chunks)
    assert stats.degraded == 0
    assert stats.errors_detected == 0


def test_storage_blocks_include_rotating_parity():
    system = make_system()
    pfile = build_parity_file(system, "priced", pattern_chunks(10))

    def body():
        return (yield from pfile.storage_blocks())

    # on disk: the 10 data blocks plus one parity block per stripe
    assert system.run(body()) == 10 + pfile.geometry.stripes_for(10)


def test_overwrite_updates_parity_via_read_modify_write():
    system = make_system()
    chunks = pattern_chunks(6)
    pfile = build_parity_file(system, "rmw", chunks)
    before = pfile.parity_rmw_reads
    replacement = b"REWRITTEN" * 10

    def overwrite():
        yield from pfile.write_block(2, replacement)

    system.run(overwrite())
    # old data + old parity were both read back for the delta update
    assert pfile.parity_rmw_reads >= before + 2
    # ... and the new value reconstructs correctly with its slot dead
    drop_caches(system)
    _stripe, slot = pfile.geometry.locate(2)
    with FaultInjector(system).failed(slot):
        read_back, _stats = read_all(system, pfile)
    assert read_back[2].startswith(replacement)


def test_write_block_validates_arguments():
    system = make_system()
    pfile = build_parity_file(system, "strict", pattern_chunks(3))

    def past_end():
        yield from pfile.write_block(5, b"sparse?")

    with pytest.raises(ProcessError) as info:
        system.run(past_end())
    assert isinstance(info.value.__cause__, ValueError)

    def oversize():
        yield from pfile.write_block(0, b"x" * (DATA_BYTES_PER_BLOCK + 1))

    with pytest.raises(ProcessError) as info:
        system.run(oversize())
    assert isinstance(info.value.__cause__, ValueError)


# ---------------------------------------------------------------------------
# Degraded reads
# ---------------------------------------------------------------------------


def test_degraded_read_reconstructs_exact_content():
    system = make_system()
    chunks = pattern_chunks(8)
    pfile = build_parity_file(system, "survivor", chunks)
    healthy, _stats = read_all(system, pfile)
    drop_caches(system)
    with FaultInjector(system).failed(1):
        degraded, stats = read_all(system, pfile)
    assert degraded == healthy  # byte-identical, padding included
    assert matches(degraded, chunks)
    # 8 blocks at p=4: slot 1 held logical 0 and 7
    assert stats.degraded == 2
    assert stats.peer_reads == 2 * 3
    assert 0 < stats.degraded_fraction < 1


def test_degraded_read_detects_midstream_device_errors(monkeypatch):
    """Even if the failure check is stale, the DeviceFailedError raised by
    the read itself routes the block to reconstruction."""
    system = make_system()
    chunks = pattern_chunks(8)
    pfile = build_parity_file(system, "stale-view", chunks)
    drop_caches(system)
    monkeypatch.setattr(pfile, "slot_failed", lambda slot: False)
    with FaultInjector(system).failed(1):
        read_back, stats = read_all(system, pfile)
    assert matches(read_back, chunks)
    assert stats.errors_detected == 2
    assert stats.degraded == 2


def test_double_failure_is_fatal():
    system = make_system()
    pfile = build_parity_file(system, "doomed", pattern_chunks(8))
    drop_caches(system)
    injector = FaultInjector(system)
    injector.fail_slot(1)
    injector.fail_slot(2)

    def read():
        return (yield from pfile.read_all())

    with pytest.raises(ProcessError) as info:
        system.run(read())
    assert isinstance(info.value.__cause__, DeviceFailedError)


# ---------------------------------------------------------------------------
# Degraded writes
# ---------------------------------------------------------------------------


def test_degraded_write_folds_new_value_into_parity():
    system = make_system()
    chunks = pattern_chunks(8)
    pfile = build_parity_file(system, "write-through-fire", chunks)
    drop_caches(system)
    _stripe, slot = pfile.geometry.locate(0)
    replacement = b"WRITTEN WHILE DOWN"
    injector = FaultInjector(system)
    injector.fail_slot(slot)

    def update():
        yield from pfile.write_block(0, replacement)

    system.run(update())
    assert pfile.degraded_writes == 1
    # the degraded read sees the *new* value (reconstructed from parity)
    read_back, _stats = read_all(system, pfile)
    assert read_back[0].startswith(replacement)
    injector.repair_slot(slot)


def test_degraded_append_grows_the_file():
    system = make_system()
    chunks = pattern_chunks(6)
    pfile = build_parity_file(system, "still-growing", chunks)
    drop_caches(system)
    extra = pattern_chunks(3, stamp=b"NEW")
    with FaultInjector(system).failed(2):

        def append():
            yield from pfile.write_all(extra)

        system.run(append())
        assert pfile.logical_blocks == 9
        read_back, _stats = read_all(system, pfile)
    assert matches(read_back, chunks + extra)


def test_degraded_write_with_parity_slot_down_is_double_failure():
    system = make_system()
    pfile = build_parity_file(system, "no-room", pattern_chunks(8))
    drop_caches(system)
    stripe, slot = pfile.geometry.locate(0)
    injector = FaultInjector(system)
    injector.fail_slot(slot)
    injector.fail_slot(pfile.geometry.parity_slot(stripe))

    def update():
        yield from pfile.write_block(0, b"nowhere to put this")

    with pytest.raises(ProcessError) as info:
        system.run(update())
    assert isinstance(info.value.__cause__, DeviceFailedError)


# ---------------------------------------------------------------------------
# Online rebuild
# ---------------------------------------------------------------------------


def run_rebuild(system, pfile, slot, rate=None):
    rebuild = OnlineRebuild(pfile, slot, rate=rate)

    def body():
        return (yield from rebuild.run())

    return system.run(body(), name="rebuild"), rebuild


def test_rebuild_restores_constituent_and_content():
    system = make_system()
    chunks = pattern_chunks(11)  # partial tail stripe on purpose
    pfile = build_parity_file(system, "phoenix", chunks)
    drop_caches(system)
    injector = FaultInjector(system)
    injector.fail_slot(2)

    def update():
        # logical 1 lives on slot 2 of stripe 0: a degraded overwrite,
        # leaving slot 2's on-disk copy stale until the sweep fixes it
        yield from pfile.write_block(1, b"rebuilt value")

    system.run(update())
    injector.repair_slot(2)
    stats, rebuild = run_rebuild(system, pfile, 2)
    assert rebuild.progress.done
    assert rebuild.progress.fraction == 1.0
    assert stats.blocks_written > 0
    # after the sweep, direct reads (no reconstruction) see fresh data
    drop_caches(system)
    read_back, rstats = read_all(system, pfile)
    assert read_back[1].startswith(b"rebuilt value")
    assert rstats.degraded == 0
    for got, want in zip(read_back[2:], chunks[2:]):
        assert got.startswith(want)


def test_rebuild_throttle_paces_the_sweep():
    system = make_system()
    pfile = build_parity_file(system, "gentle", pattern_chunks(12))
    drop_caches(system)
    with FaultInjector(system).failed(1):
        pass
    fast, _ = run_rebuild(system, pfile, 1)
    system2 = make_system(seed=21)
    pfile2 = build_parity_file(system2, "gentle", pattern_chunks(12))
    drop_caches(system2)
    with FaultInjector(system2).failed(1):
        pass
    slow, _ = run_rebuild(system2, pfile2, 1, rate=10.0)
    # 12 blocks at p=4 -> 4 stripes -> >= 0.4 simulated seconds throttled
    assert slow.elapsed >= 4 * 0.1
    assert slow.elapsed > fast.elapsed


def test_rebuild_progress_reports_eta():
    system = make_system()
    pfile = build_parity_file(system, "watched", pattern_chunks(12))
    drop_caches(system)
    rebuild = OnlineRebuild(pfile, 3, rate=100.0)
    assert rebuild.progress.eta(0.0) is None  # nothing rebuilt yet
    etas = []

    def sample():
        process = rebuild.start()
        while not rebuild.progress.done:
            eta = rebuild.progress.eta(system.sim.now)
            if eta is not None:
                etas.append(eta)
            yield Timeout(0.001)
        return (yield process.join())

    system.run(sample(), name="sampler")
    assert rebuild.progress.done
    assert etas, "never observed a mid-flight ETA"
    assert all(eta >= 0 for eta in etas)


def test_rebuild_validates_slot_and_rate():
    system = make_system()
    pfile = build_parity_file(system, "checked", pattern_chunks(4))
    with pytest.raises(ValueError):
        OnlineRebuild(pfile, 9)
    with pytest.raises(ValueError):
        OnlineRebuild(pfile, 0, rate=0.0)


# ---------------------------------------------------------------------------
# S25: degraded parity reads against every registered storage driver
# ---------------------------------------------------------------------------


ALL_DRIVER_KINDS = ("ram", "hostfs", "object")


def _fabric_spec(kind, tmp_path):
    if kind == "hostfs":
        return {"kind": "hostfs", "root": tmp_path}
    return kind


@pytest.mark.parametrize("kind", ALL_DRIVER_KINDS)
def test_degraded_read_reconstructs_on_every_driver(kind, tmp_path):
    """Fail one constituent and read through reconstruction — the parity
    path only sees the kernel contract, so every backend must survive."""
    system = make_system(storage=_fabric_spec(kind, tmp_path))
    chunks = pattern_chunks(8)
    pfile = build_parity_file(system, "survivor", chunks)
    healthy, _stats = read_all(system, pfile)
    drop_caches(system)
    with FaultInjector(system).failed(1):
        degraded, stats = read_all(system, pfile)
    assert degraded == healthy
    assert matches(degraded, chunks)
    assert stats.degraded == 2
    assert stats.peer_reads == 2 * 3


@pytest.mark.parametrize("kind", ALL_DRIVER_KINDS)
def test_degraded_write_and_rebuild_on_every_driver(kind, tmp_path):
    """Degraded writes fold into parity and the online rebuild restores
    the constituent byte-for-byte on every backend."""
    system = make_system(storage=_fabric_spec(kind, tmp_path))
    chunks = pattern_chunks(8)
    pfile = build_parity_file(system, "healed", chunks)
    injector = FaultInjector(system)
    injector.fail_slot(2)
    new_value = b"Z" * DATA_BYTES_PER_BLOCK

    def degraded_write():
        yield from pfile.write_block(0, new_value)

    system.run(degraded_write(), name="degraded-write")
    injector.repair_slot(2)
    _stats, rebuild = run_rebuild(system, pfile, 2)
    assert rebuild.progress.done
    drop_caches(system)
    read_back, stats = read_all(system, pfile)
    assert read_back[0] == new_value
    assert stats.degraded == 0  # fully healthy again
