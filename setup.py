"""Legacy setup shim: enables `pip install -e .` on environments without
the `wheel` package (PEP 517 editable builds need bdist_wheel)."""

from setuptools import setup

setup()
