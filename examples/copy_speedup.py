"""Copy-tool speedup: a miniature of the paper's Table 3.

Copies the same file with p = 2..16 LFS nodes and prints the time,
throughput, and speedup series next to the paper's published shape.
The full-scale regeneration (10 MB, p up to 32) lives in
benchmarks/bench_table3_copy.py.

Run: python examples/copy_speedup.py [blocks]
"""

import sys

from repro.analysis import (
    PAPER_TABLE3_COPY_SECONDS,
    format_table,
    scaling_table,
)
from repro.harness.experiments import run_copy_experiment


def main(blocks: int = 768) -> None:
    print(f"copy tool sweep: {blocks}-block file ({blocks * 960 // 1024} KiB of data)\n")
    times = {}
    for p in (2, 4, 8, 16):
        run = run_copy_experiment(p, blocks=blocks)
        times[p] = run.elapsed

    rows = []
    for point in scaling_table(times, units=blocks):
        paper = PAPER_TABLE3_COPY_SECONDS.get(point.p)
        paper_speedup = (
            PAPER_TABLE3_COPY_SECONDS[2] / paper if paper else float("nan")
        )
        rows.append(
            [
                point.p,
                point.time,
                point.throughput,
                point.speedup,
                paper_speedup,
                point.efficiency,
            ]
        )
    print(
        format_table(
            ["p", "time (s)", "records/s", "speedup", "paper speedup", "efficiency"],
            rows,
            title="Copy tool (measured vs paper Table 3 shape)",
        )
    )
    print(
        "\nThe paper reports 311.6 s -> 21.6 s over p = 2..32 on a 10 MB file"
        " — nearly linear, as above."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 768)
