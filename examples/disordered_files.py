"""Disordered files and off-line reorganization (paper section 3).

"We are considering the relaxation of interleaving rules for a limited
class of files, possibly with off-line reorganization."  This example
creates such a file — blocks scattered arbitrarily across the LFS nodes —
shows the price (sequential access loses round-robin's locality and hint
chaining), and then reorganizes it back into a strict interleaved file.

Run: python examples/disordered_files.py
"""

from repro.core import JobController, ParallelWorker, reorganize, scatter_quality
from repro.harness import paper_system
from repro.sim import join_all


def timed_parallel_read(system, client, name, blocks):
    """Read the whole file with a parallel-open job of t = p workers.

    This is where strict interleaving matters: each round wants its p
    consecutive blocks on p distinct nodes; a disordered layout collides
    and the colliding reads queue at one LFS.
    """
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    p = system.width
    workers = [ParallelWorker(system.client_node, i) for i in range(p)]

    def drain(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return

    def body():
        yield from client.open(name)
        processes = [
            system.client_node.spawn(drain(w), name=f"drain{w.index}")
            for w in workers
        ]
        controller = JobController(system.client_node, system.bridge.port)
        yield from controller.open(name, [w.port for w in workers])
        start = system.sim.now
        for _round in range(-(-blocks // p) + 1):
            yield from controller.read()
        elapsed = system.sim.now - start
        yield join_all(processes)
        return blocks, elapsed

    return system.run(body())


def main(p: int = 4, blocks: int = 64) -> None:
    system = paper_system(p, seed=17)
    client = system.naive_client()
    print(f"{p}-node system; writing a {blocks}-block DISORDERED file\n")

    def write_messy():
        yield from client.create("messy", disordered=True)
        for index in range(blocks):
            yield from client.seq_write("messy", b"block-%04d|" % index)
        return (yield from client.get_block_map("messy"))

    block_map = system.run(write_messy())
    quality = scatter_quality(block_map, p)
    print(f"block map (first 12): {block_map[:12]}")
    print(f"fraction of {p}-block windows touching all {p} nodes: "
          f"{quality:.2f}  (strict interleaving: 1.00)\n")

    count, messy_time = timed_parallel_read(system, client, "messy", blocks)
    print(f"parallel read (t = {p}), disordered: {count} blocks in "
          f"{messy_time:.2f} s ({count / messy_time:.0f} blocks/s)")

    def fix():
        return (yield from reorganize(client, "messy", "tidy"))

    result = system.run(fix())
    print(f"\noff-line reorganization: {result.blocks} blocks rewritten in "
          f"{result.elapsed:.2f} s (random reads pay the scattered layout)")

    count, tidy_time = timed_parallel_read(system, client, "tidy", blocks)
    print(f"parallel read (t = {p}), reorganized: {count} blocks in "
          f"{tidy_time:.2f} s ({count / tidy_time:.0f} blocks/s)")
    print(f"\nspeedup from restoring strict interleaving: "
          f"{messy_time / tidy_time:.2f}x")

    def verify():
        chunks = yield from client.read_all("tidy")
        return all(
            chunk.startswith(b"block-%04d|" % index)
            for index, chunk in enumerate(chunks)
        )

    assert system.run(verify()), "reorganization corrupted the data!"
    print("verified: contents and order preserved through reorganization")


if __name__ == "__main__":
    main()
