"""Observability (S19): where does a naive read's time actually go?

Builds a 4-node Bridge system with the observability subsystem enabled,
streams a file through the naive view, and then uses the recorded data
three ways:

1. prints one read's causal span tree (client -> message -> Bridge
   Server -> EFS -> back), the thing the Chrome trace renders visually;
2. attributes the whole read phase across client / net / server / disk /
   queue with the critical-path analyzer, next to the exact cost model;
3. dumps the op metrics (counters + latency histogram quantiles) and the
   per-disk busy fractions from the utilization timelines, and exports a
   Chrome trace JSON you can drop into https://ui.perfetto.dev/.

Run: python examples/observability.py
"""

from repro.analysis.models import naive_read_components
from repro.harness import paper_system
from repro.obs import attribute_ops, span_tree_lines

BLOCKS = 64
TRACE_FILE = "trace_observability.json"


def main(p: int = 4) -> None:
    system = paper_system(p, obs=True, trace_export=TRACE_FILE)
    client = system.naive_client()

    def workload():
        yield from client.create("obs-demo", width=system.width)
        for i in range(BLOCKS):
            yield from client.seq_write("obs-demo", bytes([i % 256]) * 960)
        yield from client.open("obs-demo")
        for _ in range(BLOCKS):
            yield from client.seq_read("obs-demo")

    system.run(workload())
    obs = system.obs

    print(f"{p}-node system, {BLOCKS}-block naive stream: "
          f"{len(obs.spans)} spans recorded\n")

    print("one read, as a span tree:")
    read_root = obs.find("call.seq_read")[0]
    for line in span_tree_lines(obs, read_root):
        print(f"  {line}")

    print("\nread-phase attribution vs the exact cost model:")
    agg = attribute_ops(obs, "call.seq_read")
    model = naive_read_components(BLOCKS, resident=True)
    print(f"  {'component':<8} {'measured ms':>12} {'model ms':>10}")
    for category in sorted(agg["attribution_seconds"]):
        measured = agg["attribution_seconds"][category] * 1e3
        predicted = model.get(category, 0.0) * 1e3
        print(f"  {category:<8} {measured:>12.3f} {predicted:>10.3f}")
    total = sum(agg["attribution_seconds"].values())
    print(f"  partition total {total * 1e3:.3f} ms == measured latency "
          f"{agg['latency_seconds'] * 1e3:.3f} ms")

    print("\nop metrics:")
    for name in ("bridge.op.seq_read", "bridge.op.seq_write"):
        print(f"  {name} = {obs.metrics.counter(name).value}")
    latency = obs.metrics.histogram("bridge.op.seq_read.latency")
    print(f"  bridge.op.seq_read.latency: n={latency.count} "
          f"p50={latency.p50 * 1e3:.2f}ms p99={latency.p99 * 1e3:.2f}ms")

    print("\ndisk busy fractions over the run:")
    for disk, fraction in obs.timeline.disk_busy_fractions(
            0.0, system.sim.now).items():
        print(f"  {disk}: {fraction:.1%}")

    # run() already exported the trace (the trace_export knob).
    print(f"\nwrote {TRACE_FILE} — open it in Perfetto or chrome://tracing")


if __name__ == "__main__":
    main()
