"""External sorting with the token-passing merge tool (paper section 5.2).

Sorts a file of 960-byte records across p LFS nodes, prints the phase
breakdown Table 4 reports (local sort / merge / total), and verifies the
output is the sorted permutation of the input.

Run: python examples/external_sort.py [records] [p]
"""

import sys

from repro import SortTool
from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.harness import paper_system
from repro.tools.sort import SortCostModel, key_of
from repro.workloads import build_record_file, read_file, uniform_keys


def main(records: int = 256, width: int = 4) -> None:
    config = DEFAULT_CONFIG.with_changes(sort_buffer_records=32)
    system = paper_system(width, seed=11, config=config)
    keys = uniform_keys(records, seed=11)
    build_record_file(system, "unsorted", keys)
    print(f"sorting {records} records ({records * 960 // 1024} KiB) on "
          f"{width} nodes, in-core buffer = {config.sort_buffer_records} records\n")

    tool = SortTool(system.client_node, system.bridge.port, system.config)

    def body():
        return (yield from tool.run("unsorted", "sorted"))

    result = system.run(body())

    rows = [
        ["local sort", result.local_sort_time, ""],
        ["global merge", result.merge_time,
         f"{len(result.passes)} passes"],
        ["total", result.total_time,
         f"{result.records_per_second:.1f} records/s"],
    ]
    print(format_table(["phase", "seconds", "notes"], rows,
                       title="Sort tool phase breakdown (simulated time)"))

    print("\nper-node local sorts:")
    for report in result.local_reports:
        print(f"  slot {report.slot}: {report.records} records, "
              f"{report.runs} runs, {report.merge_passes} local merge passes, "
              f"{report.elapsed:.2f} s")

    print("\nglobal merge passes:")
    for stats in result.passes:
        merges = ", ".join(
            f"{m.records} recs in {m.elapsed:.2f}s" for m in stats.merges
        )
        print(f"  pass {stats.pass_number}: {merges}")

    output = read_file(system, "sorted")
    out_keys = [key_of(record) for record in output]
    assert out_keys == sorted(keys), "output is not the sorted input!"
    print(f"\nverified: output is the sorted permutation of the input "
          f"({len(output)} records)")

    model = SortCostModel()
    print(f"analytic model: local {model.local_sort_time(records, width, 32):.1f}s, "
          f"merge {model.merge_phase_time(records, width):.1f}s, "
          f"token saturates near width {model.saturation_width():.0f}")


if __name__ == "__main__":
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(records, width)
