"""Driving production traffic: the open-loop S21 subsystem.

Sweeps one Bridge server (fast fixed-latency disks, so the server's
serial request loop is the bottleneck) with Poisson multi-class traffic
below and above its saturation knee, with no admission policy and with
weighted fair queueing + load shedding.  Watch the p99: open-loop
arrivals do not slow down when the server falls behind, so the
unprotected arm's tail collapses past the knee while the fair-queued
arm sheds the excess and keeps the served requests fast.

Run: python examples/traffic.py [duration_seconds]
"""

import sys

from repro.analysis import format_table
from repro.harness.experiments import run_traffic_experiment


def main(duration: float = 1.5) -> None:
    print(f"open-loop traffic, {duration:g}s of Poisson arrivals per run\n")
    rows = []
    for rate in (40, 160):
        for policy, params in (("none", None),
                               ("fair", {"depth": 32})):
            run = run_traffic_experiment(
                rate=rate, duration=duration, policy=policy,
                admission_params=params, seed=7,
            )
            summary = run.summary
            rows.append([
                rate, policy, run.offered, summary["completed"],
                summary["shed"] + summary["throttled"],
                f"{run.goodput:.1f}",
                f"{run.server_utilization:.0%}",
                f"{run.class_quantile('read', 'p50') * 1e3:.1f}",
                f"{run.class_quantile('read', 'p99') * 1e3:.0f}",
            ])
    print(format_table(
        ["offered r/s", "policy", "arrivals", "ok", "refused",
         "goodput r/s", "server busy", "read p50 ms", "read p99 ms"],
        rows,
        title="latency vs offered load, with and without admission control",
    ))
    print(
        "\nPast the knee the unprotected p99 keeps growing with the "
        "backlog;\nfair queueing sheds excess arrivals (typed, sub-ms "
        "refusals) and\nholds the tail for the traffic it admits."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.5)
