"""Murphy's law for interleaved files (paper section 6) — and the remedies.

Interleaved files touch every disk, so a single device failure ruins
every file.  This example writes a plain interleaved file and a mirrored
one (shadow copy shifted by one node), kills a disk, and shows that the
plain file is gone while the mirrored file reads back completely — at
exactly 2x the storage, as the paper prices it.  It then does the same
with rotating parity (S16): same survival, p/(p-1)x storage, plus an
online rebuild after the disk is repaired.

Run: python examples/fault_injection.py
"""

from repro.errors import DeviceFailedError
from repro.faults import (
    FaultInjector,
    MirroredFile,
    files_lost_fraction_interleaved,
    files_lost_fraction_single_node,
)
from repro.harness import paper_system
from repro.workloads import build_file, pattern_chunks


def main(p: int = 8, blocks: int = 24) -> None:
    system = paper_system(p, seed=13)
    print(f"{p}-node Bridge system; writing two {blocks}-block files\n")

    build_file(system, "plain", pattern_chunks(blocks))
    mirrored = MirroredFile(system, "guarded")

    def setup():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(blocks))
        return (yield from mirrored.storage_blocks())

    mirror_storage = system.run(setup())
    print(f"plain file:    {blocks} blocks of storage")
    print(f"mirrored file: {mirror_storage} blocks of storage "
          f"({mirror_storage / blocks:.0f}x)\n")

    # force future reads to touch the devices, then kill one disk
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    victim = 3
    FaultInjector(system).fail_slot(victim)
    print(f"*** disk on LFS node {victim} has failed ***\n")

    client = system.naive_client()

    def read_plain():
        recovered = 0
        try:
            for block in range(blocks):
                yield from client.random_read("plain", block)
                recovered += 1
        except DeviceFailedError:
            return recovered, True
        return recovered, False

    recovered, lost = system.run(read_plain())
    print(f"plain interleaved file: read {recovered}/{blocks} blocks before "
          f"hitting the dead disk -> file {'LOST' if lost else 'ok'}")

    def read_mirrored():
        return (yield from mirrored.read_all())

    chunks, stats = system.run(read_mirrored())
    print(f"mirrored file: recovered {len(chunks)}/{blocks} blocks "
          f"({stats.fallbacks} served from the shadow copy)\n")

    print("expected loss under one disk failure:")
    print(f"  interleaved, unreplicated: "
          f"{files_lost_fraction_interleaved(p) * 100:.0f}% of files")
    print(f"  single-node files:         "
          f"{files_lost_fraction_single_node(p) * 100:.1f}% of files")
    print("  mirrored interleaved:      0% (any single failure)")
    print("\n'Replication helps, but only at very high cost.  Storage capacity"
          "\nmust be doubled in order to tolerate single-drive failures.'")

    parity_demo(p, blocks)


def parity_demo(p: int = 8, blocks: int = 24) -> None:
    """The cheaper remedy: rotating XOR parity with online rebuild."""
    from repro.efs.fsck import check_system

    system = paper_system(p, seed=13, redundancy="parity")
    pfile = system.redundant_file("insured")

    def setup():
        yield from pfile.create()
        yield from pfile.write_all(pattern_chunks(blocks))
        return (yield from pfile.storage_blocks())

    storage = system.run(setup())
    print(f"\n--- rotating parity (RAID-5 style), same {blocks}-block file ---")
    print(f"parity file: {storage} blocks of storage "
          f"({storage / blocks:.2f}x vs 2x for mirroring; "
          f"ideal p/(p-1) = {p / (p - 1):.2f}x)\n")

    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    victim = 3
    injector = FaultInjector(system)
    injector.fail_slot(victim)
    print(f"*** disk on LFS node {victim} has failed ***")

    def read_parity():
        return (yield from pfile.read_all())

    chunks, stats = system.run(read_parity())
    print(f"parity file: recovered {len(chunks)}/{blocks} blocks "
          f"({stats.degraded} reconstructed from peer XOR, "
          f"{stats.peer_reads} peer reads)")

    # keep writing while degraded, then repair: the manager auto-starts
    # an online stripe-by-stripe rebuild of the dead constituent
    def append():
        yield from pfile.write_all(pattern_chunks(4, stamp=b"NEW"))

    system.run(append())
    print(f"appended 4 blocks while degraded "
          f"(file now {pfile.logical_blocks} blocks)")

    repaired_at = system.sim.now
    injector.repair_slot(victim)
    system.sim.run()  # drain the rebuild sweep
    rebuild = system.redundancy.rebuilds[-1]
    print(f"disk repaired; online rebuild rewrote "
          f"{rebuild.progress.blocks_written} blocks in "
          f"{system.sim.now - repaired_at:.3f} simulated seconds")
    clean = all(report.clean for report in check_system(system))
    print(f"fsck after rebuild: {'clean' if clean else 'ERRORS'}")


if __name__ == "__main__":
    main()
