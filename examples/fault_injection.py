"""Murphy's law for interleaved files (paper section 6) — and the remedy.

Interleaved files touch every disk, so a single device failure ruins
every file.  This example writes a plain interleaved file and a mirrored
one (shadow copy shifted by one node), kills a disk, and shows that the
plain file is gone while the mirrored file reads back completely — at
exactly 2x the storage, as the paper prices it.

Run: python examples/fault_injection.py
"""

from repro.errors import DeviceFailedError
from repro.faults import (
    FaultInjector,
    MirroredFile,
    files_lost_fraction_interleaved,
    files_lost_fraction_single_node,
)
from repro.harness import paper_system
from repro.workloads import build_file, pattern_chunks


def main(p: int = 8, blocks: int = 24) -> None:
    system = paper_system(p, seed=13)
    print(f"{p}-node Bridge system; writing two {blocks}-block files\n")

    build_file(system, "plain", pattern_chunks(blocks))
    mirrored = MirroredFile(system, "guarded")

    def setup():
        yield from mirrored.create()
        yield from mirrored.write_all(pattern_chunks(blocks))
        return (yield from mirrored.storage_blocks())

    mirror_storage = system.run(setup())
    print(f"plain file:    {blocks} blocks of storage")
    print(f"mirrored file: {mirror_storage} blocks of storage "
          f"({mirror_storage / blocks:.0f}x)\n")

    # force future reads to touch the devices, then kill one disk
    for efs in system.efs_servers:
        system.run(efs.cache.flush(), name="flush")
        efs.cache.invalidate_all()
    victim = 3
    FaultInjector(system).fail_slot(victim)
    print(f"*** disk on LFS node {victim} has failed ***\n")

    client = system.naive_client()

    def read_plain():
        recovered = 0
        try:
            for block in range(blocks):
                yield from client.random_read("plain", block)
                recovered += 1
        except DeviceFailedError:
            return recovered, True
        return recovered, False

    recovered, lost = system.run(read_plain())
    print(f"plain interleaved file: read {recovered}/{blocks} blocks before "
          f"hitting the dead disk -> file {'LOST' if lost else 'ok'}")

    def read_mirrored():
        return (yield from mirrored.read_all())

    chunks, stats = system.run(read_mirrored())
    print(f"mirrored file: recovered {len(chunks)}/{blocks} blocks "
          f"({stats.fallbacks} served from the shadow copy)\n")

    print("expected loss under one disk failure:")
    print(f"  interleaved, unreplicated: "
          f"{files_lost_fraction_interleaved(p) * 100:.0f}% of files")
    print(f"  single-node files:         "
          f"{files_lost_fraction_single_node(p) * 100:.1f}% of files")
    print("  mirrored interleaved:      0% (any single failure)")
    print("\n'Replication helps, but only at very high cost.  Storage capacity"
          "\nmust be doubled in order to tolerate single-drive failures.'")


if __name__ == "__main__":
    main()
