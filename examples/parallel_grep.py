"""Log search with the grep tool: ship the code to the data.

A 16-node Bridge system holds a large "log file"; the grep tool spawns a
scanner on every LFS node so only match positions cross the interconnect.
The same search is then repeated on an Ethernet-style shared bus, where
the naive view must move every block across the network and the tool's
advantage becomes decisive (the paper's section 1 argument).

Run: python examples/parallel_grep.py [blocks]
"""

import sys

from repro import BridgeSystem, GrepTool
from repro.machine import EthernetNetwork
from repro.storage import FixedLatency
from repro.workloads import build_file, text_chunks


def search(system, label: str, blocks: int):
    chunks = text_chunks(blocks, seed=3, needle=b"ERROR-42", needle_every=17)
    build_file(system, "syslog", chunks)
    tool = GrepTool(system.client_node, system.bridge.port, system.config)

    def tool_search():
        return (yield from tool.run("syslog", b"ERROR-42"))

    result = system.run(tool_search())

    client = system.naive_client()

    def naive_search():
        yield from client.open("syslog")
        start = system.sim.now
        hits = 0
        while True:
            block, data = yield from client.seq_read("syslog")
            if block is None:
                break
            hits += data.count(b"ERROR-42")
        return hits, system.sim.now - start

    naive_hits, naive_elapsed = system.run(naive_search())
    assert naive_hits == result.count

    print(f"[{label}]")
    print(f"  grep tool:   {result.count} matches in {result.elapsed:.2f} s "
          f"({result.blocks_scanned / result.elapsed:.0f} blocks/s)")
    print(f"  naive view:  {naive_hits} matches in {naive_elapsed:.2f} s "
          f"({blocks / naive_elapsed:.0f} blocks/s)")
    print(f"  tool advantage: {naive_elapsed / result.elapsed:.1f}x")
    first = result.matches[0]
    print(f"  first match: global block {first.global_block}, "
          f"offset {first.offset}\n")


def main(blocks: int = 256) -> None:
    print(f"searching a {blocks}-block log for 'ERROR-42'\n")
    butterfly = BridgeSystem(16, seed=5, disk_latency=FixedLatency(0.015))
    search(butterfly, "Butterfly switch (cheap messages)", blocks)

    ethernet = BridgeSystem(
        16, seed=5, disk_latency=FixedLatency(0.015), network=EthernetNetwork
    )
    search(ethernet, "shared 10 Mb/s Ethernet (every naive block crosses the bus)",
           blocks)
    print("On a broadcast network, moving the scan to the data is the only\n"
          "view whose cost does not grow with the interconnect's load —\n"
          "exactly the paper's motivation for the tool interface.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
