"""Quickstart: the three user views of the Bridge file system.

Builds an 8-node Bridge installation (15 ms Wren-class simulated disks),
then exercises:

1. the naive view — ordinary create/write/read through the Bridge Server;
2. the parallel-open view — a job of 4 workers receiving blocks in lock step;
3. the tool view — Get Info, then a worker spawned onto every LFS node.

Run: python examples/quickstart.py
"""

from repro import BridgeSystem, JobController, ParallelWorker, WordCountTool
from repro.sim import join_all


def main() -> None:
    system = BridgeSystem(8, seed=7)
    client = system.naive_client()
    print(f"machine: {system.width} LFS nodes + server + front end")

    # ------------------------------------------------------------------
    # 1. Naive view
    # ------------------------------------------------------------------
    lines = [f"line {i:03d}: the quick brown fox\n".encode() for i in range(20)]

    def naive_view():
        yield from client.create("demo")
        for line in lines:
            yield from client.seq_write("demo", line)
        opened = yield from client.open("demo")
        block, data = yield from client.seq_read("demo")
        return opened, block, data

    opened, block, data = system.run(naive_view())
    print("\n[naive view]")
    print(f"  file 'demo': {opened.total_blocks} blocks interleaved "
          f"{opened.width} ways (start slot {opened.start})")
    print(f"  per-LFS sizes: {[c.size_blocks for c in opened.constituents]}")
    print(f"  first block read back: {data[:30]!r}...")

    # ------------------------------------------------------------------
    # 2. Parallel-open view
    # ------------------------------------------------------------------
    workers = [ParallelWorker(system.client_node, i) for i in range(4)]
    received = []

    def drain(worker):
        while True:
            delivery = yield from worker.receive()
            if delivery.eof:
                return
            received.append((worker.index, delivery.block_number))

    def parallel_view():
        processes = [
            system.client_node.spawn(drain(w), name=f"drain{w.index}")
            for w in workers
        ]
        controller = JobController(system.client_node, system.bridge.port)
        yield from controller.open("demo", [w.port for w in workers])
        moved = 0
        for _round in range(6):  # 20 blocks / 4 workers + EOF round
            moved += yield from controller.read()
        yield from controller.close()
        yield join_all(processes)
        return moved

    moved = system.run(parallel_view())
    print("\n[parallel-open view]")
    print(f"  4 workers drained {moved} blocks in lock-step rounds")
    print(f"  worker 0 received global blocks "
          f"{[b for w, b in received if w == 0]}")

    # ------------------------------------------------------------------
    # 3. Tool view
    # ------------------------------------------------------------------
    tool = WordCountTool(system.client_node, system.bridge.port, system.config)

    def tool_view():
        return (yield from tool.run("demo"))

    result = system.run(tool_view())
    print("\n[tool view]")
    print(f"  wc tool spawned a worker on each of the {system.width} LFS nodes")
    print(f"  counted {result.words} words, {result.lines} lines, "
          f"{result.data_bytes} bytes in {result.elapsed * 1e3:.1f} simulated ms")

    print(f"\ntotal simulated time: {system.sim.now:.3f} s; "
          f"disk ops: {system.total_disk_ops()}")


if __name__ == "__main__":
    main()
